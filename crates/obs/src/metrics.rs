//! The metrics registry: named counters, gauges, and histograms with
//! Prometheus text exposition.
//!
//! A [`Registry`] owns metric **families** (one name, one type, one
//! help string) containing **samples** (one per label set). Handles
//! ([`Counter`], [`Gauge`], [`HistogramHandle`]) are cheap clones of
//! the underlying cells, so instrumented code updates an atomic and
//! never touches the registry lock; registering the same name + labels
//! twice returns a handle to the same cell. [`Registry::render`] emits
//! the whole registry in Prometheus text exposition format, which the
//! in-repo validator ([`crate::expo`]) parses back in tests.
//!
//! All orderings are `Relaxed`: every cell is an independent telemetry
//! tally — no reader derives a happens-before edge from a metric.
//!
//! Histograms reuse [`fdip_telemetry::Histogram`] (log2 buckets), so a
//! scrape's `_bucket` series is the same distribution Document 1
//! embeds — one histogram implementation across the whole repo.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

use fdip_telemetry::Histogram;

/// What a metric family is, in exposition terms.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum MetricKind {
    /// Monotonically non-decreasing count.
    Counter,
    /// A value that can go up and down.
    Gauge,
    /// A [`Histogram`] rendered as cumulative `_bucket` series.
    Histogram,
}

impl MetricKind {
    /// The `# TYPE` keyword.
    pub fn as_str(self) -> &'static str {
        match self {
            MetricKind::Counter => "counter",
            MetricKind::Gauge => "gauge",
            MetricKind::Histogram => "histogram",
        }
    }
}

/// A monotonic counter cell.
#[derive(Clone, Debug, Default)]
pub struct Counter(Arc<AtomicU64>);

impl Counter {
    /// Adds 1; returns the new total.
    pub fn inc(&self) -> u64 {
        self.add(1)
    }

    /// Adds `n`; returns the new total.
    pub fn add(&self, n: u64) -> u64 {
        self.0.fetch_add(n, Ordering::Relaxed) + n
    }

    /// Raises the counter to `total` if it is below it — for mirroring
    /// an externally maintained monotonic total (e.g. pool stats) into
    /// the registry without double counting.
    pub fn set_total(&self, total: u64) {
        self.0.fetch_max(total, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A gauge cell (an `f64` stored as bits).
#[derive(Clone, Debug, Default)]
pub struct Gauge(Arc<AtomicU64>);

impl Gauge {
    /// Sets the gauge.
    pub fn set(&self, value: f64) {
        self.0.store(value.to_bits(), Ordering::Relaxed);
    }

    /// Adds `delta` (may be negative).
    pub fn add(&self, delta: f64) {
        let _ = self
            .0
            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |bits| {
                Some((f64::from_bits(bits) + delta).to_bits())
            });
    }

    /// Current value.
    pub fn get(&self) -> f64 {
        f64::from_bits(self.0.load(Ordering::Relaxed))
    }
}

/// A histogram cell.
#[derive(Clone, Debug, Default)]
pub struct HistogramHandle(Arc<Mutex<Histogram>>);

impl HistogramHandle {
    /// Records one sample.
    pub fn observe(&self, value: u64) {
        self.0.lock().expect("histogram lock").record(value);
    }

    /// A copy of the current distribution.
    pub fn snapshot(&self) -> Histogram {
        self.0.lock().expect("histogram lock").clone()
    }

    /// Replaces the distribution — for mirroring an externally
    /// maintained histogram (e.g. the pool's queue depth) at scrape
    /// time.
    pub fn replace(&self, h: Histogram) {
        *self.0.lock().expect("histogram lock") = h;
    }
}

/// One sample's current value, for programmatic reads
/// ([`Registry::samples`]).
#[derive(Clone, Debug)]
pub enum SampleValue {
    /// A counter total.
    Counter(u64),
    /// A gauge value.
    Gauge(f64),
    /// A histogram snapshot.
    Histogram(Histogram),
}

#[derive(Clone)]
enum Cell {
    Counter(Counter),
    Gauge(Gauge),
    Histogram(HistogramHandle),
}

struct Family {
    kind: MetricKind,
    help: String,
    /// Keyed by the canonical (sorted) label rendering, so iteration —
    /// and therefore the exposition — is deterministic.
    samples: BTreeMap<String, (Vec<(String, String)>, Cell)>,
}

/// A set of metric families; one per daemon (plus [`global`] for
/// client-side code with no daemon attached).
#[derive(Default)]
pub struct Registry {
    families: Mutex<BTreeMap<String, Family>>,
}

/// Is `name` a valid exposition metric/label name
/// (`[a-zA-Z_:][a-zA-Z0-9_:]*`; labels additionally reject `:`)?
fn valid_name(name: &str, allow_colon: bool) -> bool {
    let mut chars = name.chars();
    let Some(first) = chars.next() else {
        return false;
    };
    let head_ok = first.is_ascii_alphabetic() || first == '_' || (allow_colon && first == ':');
    head_ok && chars.all(|c| c.is_ascii_alphanumeric() || c == '_' || (allow_colon && c == ':'))
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Registry {
        Registry::default()
    }

    fn register(&self, name: &str, help: &str, labels: &[(&str, &str)], kind: MetricKind) -> Cell {
        assert!(valid_name(name, true), "invalid metric name {name:?}");
        let mut labels: Vec<(String, String)> = labels
            .iter()
            .map(|(k, v)| {
                assert!(valid_name(k, false), "invalid label name {k:?}");
                (k.to_string(), v.to_string())
            })
            .collect();
        labels.sort();
        let key = render_labels(&labels);
        let mut families = self.families.lock().expect("registry lock");
        let family = families.entry(name.to_string()).or_insert_with(|| Family {
            kind,
            help: help.to_string(),
            samples: BTreeMap::new(),
        });
        assert!(
            family.kind == kind,
            "metric {name} registered as {} and {}",
            family.kind.as_str(),
            kind.as_str()
        );
        family
            .samples
            .entry(key)
            .or_insert_with(|| {
                let cell = match kind {
                    MetricKind::Counter => Cell::Counter(Counter::default()),
                    MetricKind::Gauge => Cell::Gauge(Gauge::default()),
                    MetricKind::Histogram => Cell::Histogram(HistogramHandle::default()),
                };
                (labels, cell)
            })
            .1
            .clone()
    }

    /// Registers (or finds) an unlabeled counter.
    pub fn counter(&self, name: &str, help: &str) -> Counter {
        self.counter_with(name, help, &[])
    }

    /// Registers (or finds) a labeled counter.
    ///
    /// # Panics
    ///
    /// Panics on an invalid name or if `name` is already registered
    /// with a different kind — both are programming errors.
    pub fn counter_with(&self, name: &str, help: &str, labels: &[(&str, &str)]) -> Counter {
        match self.register(name, help, labels, MetricKind::Counter) {
            Cell::Counter(c) => c,
            _ => unreachable!("kind checked in register"),
        }
    }

    /// Registers (or finds) an unlabeled gauge.
    pub fn gauge(&self, name: &str, help: &str) -> Gauge {
        self.gauge_with(name, help, &[])
    }

    /// Registers (or finds) a labeled gauge (panics as
    /// [`Registry::counter_with`] does).
    pub fn gauge_with(&self, name: &str, help: &str, labels: &[(&str, &str)]) -> Gauge {
        match self.register(name, help, labels, MetricKind::Gauge) {
            Cell::Gauge(g) => g,
            _ => unreachable!("kind checked in register"),
        }
    }

    /// Registers (or finds) an unlabeled histogram.
    pub fn histogram(&self, name: &str, help: &str) -> HistogramHandle {
        self.histogram_with(name, help, &[])
    }

    /// Registers (or finds) a labeled histogram (panics as
    /// [`Registry::counter_with`] does).
    pub fn histogram_with(
        &self,
        name: &str,
        help: &str,
        labels: &[(&str, &str)],
    ) -> HistogramHandle {
        match self.register(name, help, labels, MetricKind::Histogram) {
            Cell::Histogram(h) => h,
            _ => unreachable!("kind checked in register"),
        }
    }

    /// Every registered family name, sorted.
    pub fn names(&self) -> Vec<String> {
        self.families
            .lock()
            .expect("registry lock")
            .keys()
            .cloned()
            .collect()
    }

    /// Current samples of one family: `(labels, value)` pairs in
    /// deterministic label order. Empty if the name is unknown.
    pub fn samples(&self, name: &str) -> Vec<(Vec<(String, String)>, SampleValue)> {
        let families = self.families.lock().expect("registry lock");
        let Some(family) = families.get(name) else {
            return Vec::new();
        };
        family
            .samples
            .values()
            .map(|(labels, cell)| {
                let value = match cell {
                    Cell::Counter(c) => SampleValue::Counter(c.get()),
                    Cell::Gauge(g) => SampleValue::Gauge(g.get()),
                    Cell::Histogram(h) => SampleValue::Histogram(h.snapshot()),
                };
                (labels.clone(), value)
            })
            .collect()
    }

    /// Renders every family in Prometheus text exposition format
    /// (`# HELP` / `# TYPE` then samples; histograms as cumulative
    /// `_bucket{le=…}` series plus `_sum` / `_count`).
    pub fn render(&self) -> String {
        let mut out = String::new();
        let families = self.families.lock().expect("registry lock");
        for (name, family) in families.iter() {
            out.push_str(&format!("# HELP {name} {}\n", escape_help(&family.help)));
            out.push_str(&format!("# TYPE {name} {}\n", family.kind.as_str()));
            for (labels, cell) in family.samples.values() {
                match cell {
                    Cell::Counter(c) => {
                        out.push_str(&sample_line(name, labels, &c.get().to_string()));
                    }
                    Cell::Gauge(g) => {
                        out.push_str(&sample_line(name, labels, &format_f64(g.get())));
                    }
                    Cell::Histogram(h) => render_histogram(&mut out, name, labels, &h.snapshot()),
                }
            }
        }
        out
    }
}

/// `{k="v",…}` (sorted), or the empty string for no labels.
fn render_labels(labels: &[(String, String)]) -> String {
    if labels.is_empty() {
        return String::new();
    }
    let inner: Vec<String> = labels
        .iter()
        .map(|(k, v)| format!("{k}=\"{}\"", escape_label(v)))
        .collect();
    format!("{{{}}}", inner.join(","))
}

fn escape_label(v: &str) -> String {
    v.replace('\\', "\\\\")
        .replace('"', "\\\"")
        .replace('\n', "\\n")
}

fn escape_help(v: &str) -> String {
    v.replace('\\', "\\\\").replace('\n', "\\n")
}

/// Shortest-round-trip float, with Prometheus spellings for the
/// non-finite values.
fn format_f64(v: f64) -> String {
    if v.is_nan() {
        "NaN".to_string()
    } else if v.is_infinite() {
        (if v > 0.0 { "+Inf" } else { "-Inf" }).to_string()
    } else {
        format!("{v}")
    }
}

fn sample_line(name: &str, labels: &[(String, String)], value: &str) -> String {
    format!("{name}{} {value}\n", render_labels(labels))
}

/// Cumulative buckets from the log2 histogram: each non-empty bucket
/// contributes `le = <bucket hi>`, then the mandatory `+Inf` bucket,
/// `_sum`, and `_count`.
fn render_histogram(out: &mut String, name: &str, labels: &[(String, String)], h: &Histogram) {
    let with_le = |le: &str| -> Vec<(String, String)> {
        let mut l = labels.to_vec();
        l.push(("le".to_string(), le.to_string()));
        l.sort();
        l
    };
    let mut cumulative = 0u64;
    for bucket in h.buckets() {
        cumulative += bucket.count;
        out.push_str(&sample_line(
            &format!("{name}_bucket"),
            &with_le(&bucket.hi.to_string()),
            &cumulative.to_string(),
        ));
    }
    out.push_str(&sample_line(
        &format!("{name}_bucket"),
        &with_le("+Inf"),
        &h.count().to_string(),
    ));
    out.push_str(&sample_line(
        &format!("{name}_sum"),
        labels,
        &h.sum().to_string(),
    ));
    out.push_str(&sample_line(
        &format!("{name}_count"),
        labels,
        &h.count().to_string(),
    ));
}

static GLOBAL: OnceLock<Registry> = OnceLock::new();

/// The process-wide registry for code that has no daemon-owned
/// registry in reach (the harness's remote client). Daemons own their
/// own [`Registry`] so tests hosting several servers in one process
/// do not cross-contaminate scrapes.
pub fn global() -> &'static Registry {
    GLOBAL.get_or_init(Registry::new)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_name_and_labels_share_a_cell() {
        let r = Registry::new();
        let a = r.counter("fdip_test_total", "help");
        let b = r.counter("fdip_test_total", "help");
        a.inc();
        b.add(2);
        assert_eq!(a.get(), 3);
        let c = r.counter_with("fdip_test_labeled", "h", &[("k", "v")]);
        let d = r.counter_with("fdip_test_labeled", "h", &[("k", "v")]);
        c.inc();
        assert_eq!(d.get(), 1);
        let other = r.counter_with("fdip_test_labeled", "h", &[("k", "w")]);
        assert_eq!(other.get(), 0);
    }

    #[test]
    #[should_panic(expected = "registered as")]
    fn kind_conflicts_are_programming_errors() {
        let r = Registry::new();
        let _ = r.counter("fdip_test_conflict", "h");
        let _ = r.gauge("fdip_test_conflict", "h");
    }

    #[test]
    #[should_panic(expected = "invalid metric name")]
    fn invalid_names_are_rejected() {
        let _ = Registry::new().counter("0bad-name", "h");
    }

    #[test]
    fn gauge_set_add_and_counter_set_total() {
        let r = Registry::new();
        let g = r.gauge("fdip_test_gauge", "h");
        g.set(2.5);
        g.add(-1.0);
        assert!((g.get() - 1.5).abs() < 1e-12);
        let c = r.counter("fdip_test_mirror_total", "h");
        c.set_total(10);
        c.set_total(7); // never goes backwards
        assert_eq!(c.get(), 10);
    }

    #[test]
    fn render_emits_help_type_and_samples_in_sorted_order() {
        let r = Registry::new();
        r.counter("fdip_b_total", "second").inc();
        r.gauge("fdip_a_gauge", "first").set(0.5);
        r.counter_with("fdip_c_total", "labeled", &[("status", "200")])
            .add(4);
        let text = r.render();
        let a = text.find("fdip_a_gauge").unwrap();
        let b = text.find("fdip_b_total").unwrap();
        assert!(a < b, "families must render sorted:\n{text}");
        assert!(text.contains("# HELP fdip_a_gauge first\n"));
        assert!(text.contains("# TYPE fdip_a_gauge gauge\n"));
        assert!(text.contains("fdip_a_gauge 0.5\n"));
        assert!(text.contains("fdip_b_total 1\n"));
        assert!(text.contains("fdip_c_total{status=\"200\"} 4\n"));
    }

    #[test]
    fn histogram_renders_cumulative_buckets_sum_and_count() {
        let r = Registry::new();
        let h = r.histogram("fdip_test_us", "h");
        for v in [0u64, 1, 1, 3, 10] {
            h.observe(v);
        }
        let text = r.render();
        // Buckets: {0}:1, [1,1]:2, [2,3]:1, [8,15]:1 → cumulative.
        assert!(text.contains("fdip_test_us_bucket{le=\"0\"} 1\n"), "{text}");
        assert!(text.contains("fdip_test_us_bucket{le=\"1\"} 3\n"));
        assert!(text.contains("fdip_test_us_bucket{le=\"3\"} 4\n"));
        assert!(text.contains("fdip_test_us_bucket{le=\"15\"} 5\n"));
        assert!(text.contains("fdip_test_us_bucket{le=\"+Inf\"} 5\n"));
        assert!(text.contains("fdip_test_us_sum 15\n"));
        assert!(text.contains("fdip_test_us_count 5\n"));
    }

    #[test]
    fn samples_expose_values_programmatically() {
        let r = Registry::new();
        r.counter_with("fdip_test_clients", "h", &[("client", "alice")])
            .add(3);
        r.counter_with("fdip_test_clients", "h", &[("client", "bob")])
            .inc();
        let samples = r.samples("fdip_test_clients");
        assert_eq!(samples.len(), 2);
        assert_eq!(
            samples[0].0,
            vec![("client".to_string(), "alice".to_string())]
        );
        assert!(matches!(samples[0].1, SampleValue::Counter(3)));
        assert!(r.samples("fdip_unknown").is_empty());
    }
}
