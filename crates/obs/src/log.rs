//! Structured, leveled, target-tagged logging.
//!
//! Every record is one JSON object — `seq`, `ts_ms`, `level`,
//! `target`, `msg`, `fields` — so log output is machine-parseable line
//! by line (Document 9 of `docs/METRICS.md` specifies the shape). A
//! process has one global [`Logger`] holding:
//!
//! * a **filter** parsed from the `FDIP_LOG` spec
//!   (`serve=debug,exec=info`, or just `debug`), changeable at runtime;
//! * a bounded in-memory **ring** of the most recent records
//!   ([`RING_CAPACITY`]), which `fdip-serve` exposes at `GET /v1/logs`;
//! * optional **sinks**: stderr (one JSON line per record) and a file
//!   with size-triggered rename rotation (`path` → `path.1`).
//!
//! Filtering happens before a record is built, so a disabled call site
//! costs one level comparison and no allocation.

use std::collections::VecDeque;
use std::io::{self, Write};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock};

use fdip_telemetry::Json;

use crate::clock;

/// Records kept in the in-memory ring served at `GET /v1/logs`.
pub const RING_CAPACITY: usize = 1024;

/// Log severity, ordered `Trace < Debug < Info < Warn < Error`.
#[derive(Copy, Clone, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum Level {
    /// Very fine-grained tracing of control flow.
    Trace,
    /// Diagnostic detail useful when chasing a problem.
    Debug,
    /// Normal operational events (startup, grid served, resume).
    Info,
    /// Something surprising that the process recovered from.
    Warn,
    /// An operation failed.
    Error,
}

impl Level {
    /// Lowercase wire name (`trace` … `error`).
    pub fn as_str(self) -> &'static str {
        match self {
            Level::Trace => "trace",
            Level::Debug => "debug",
            Level::Info => "info",
            Level::Warn => "warn",
            Level::Error => "error",
        }
    }

    /// Parses a lowercase level name.
    pub fn parse(s: &str) -> Option<Level> {
        match s {
            "trace" => Some(Level::Trace),
            "debug" => Some(Level::Debug),
            "info" => Some(Level::Info),
            "warn" => Some(Level::Warn),
            "error" => Some(Level::Error),
            _ => None,
        }
    }
}

/// A threshold: `None` means the target is off entirely.
type Threshold = Option<Level>;

/// Parses a level-or-off token.
fn parse_threshold(s: &str) -> Option<Threshold> {
    if s == "off" {
        return Some(None);
    }
    Level::parse(s).map(Some)
}

/// The parsed form of an `FDIP_LOG` spec.
#[derive(Clone, Debug)]
struct Filter {
    default: Threshold,
    targets: Vec<(String, Threshold)>,
}

impl Filter {
    /// Parses a spec: comma-separated clauses, each `target=level`, a
    /// bare level (setting the default), or a bare target (enabled at
    /// `trace`). Unknown clauses are ignored, so a typo degrades to
    /// the default rather than panicking inside a logging call.
    fn parse(spec: &str) -> Filter {
        let mut f = Filter {
            default: Some(Level::Info),
            targets: Vec::new(),
        };
        for clause in spec.split(',').map(str::trim).filter(|c| !c.is_empty()) {
            if let Some((target, level)) = clause.split_once('=') {
                if let Some(th) = parse_threshold(level.trim()) {
                    f.targets.push((target.trim().to_string(), th));
                }
            } else if let Some(th) = parse_threshold(clause) {
                f.default = th;
            } else {
                f.targets.push((clause.to_string(), Some(Level::Trace)));
            }
        }
        f
    }

    /// Would a record at `level` for `target` pass this filter?
    fn enabled(&self, level: Level, target: &str) -> bool {
        let threshold = self
            .targets
            .iter()
            .find(|(t, _)| t == target)
            .map_or(self.default, |(_, th)| *th);
        threshold.is_some_and(|th| level >= th)
    }
}

/// One structured log record (Document 9 of `docs/METRICS.md`).
#[derive(Clone, Debug)]
pub struct LogRecord {
    /// Monotonic per-process sequence number, starting at 1.
    pub seq: u64,
    /// Wall-clock timestamp, milliseconds since the Unix epoch.
    pub ts_ms: u64,
    /// Severity.
    pub level: Level,
    /// Subsystem tag (`serve`, `exec`, `harness`, …).
    pub target: String,
    /// Human-readable event description, stable enough to grep.
    pub msg: String,
    /// Structured payload: named JSON values.
    pub fields: Vec<(String, Json)>,
}

impl LogRecord {
    /// The one-object-per-line JSON form.
    pub fn to_json(&self) -> Json {
        let mut fields = Json::obj();
        for (k, v) in &self.fields {
            fields.set(k, v.clone());
        }
        Json::obj()
            .with("seq", self.seq)
            .with("ts_ms", self.ts_ms)
            .with("level", self.level.as_str())
            .with("target", self.target.as_str())
            .with("msg", self.msg.as_str())
            .with("fields", fields)
    }
}

/// A filtered page of the ring, as returned by [`Logger::recent`].
#[derive(Clone, Debug)]
pub struct LogsPage {
    /// Matching records in ascending `seq` order.
    pub records: Vec<LogRecord>,
    /// Records ever evicted from the ring (ring overflow, not filter).
    pub dropped: u64,
    /// Pass this as the next `since` to poll for newer records.
    pub next_since: u64,
}

/// Counters describing the logger itself.
#[derive(Clone, Copy, Debug)]
pub struct LogStats {
    /// Records accepted by the filter since process start.
    pub records_total: u64,
    /// Records evicted from the ring.
    pub dropped: u64,
    /// Records currently held.
    pub ring_len: usize,
    /// Ring capacity ([`RING_CAPACITY`]).
    pub ring_capacity: usize,
}

struct Ring {
    buf: VecDeque<LogRecord>,
    dropped: u64,
}

struct FileSink {
    path: PathBuf,
    file: std::fs::File,
    written: u64,
    rotate_bytes: u64,
}

impl FileSink {
    /// Appends one line, rotating first (`path` → `path.1`, then a
    /// fresh file — rename keeps the swap atomic for readers following
    /// the rotated name) when the line would push the file past the
    /// rotation threshold.
    fn write_line(&mut self, line: &str) -> io::Result<()> {
        let add = line.len() as u64 + 1;
        if self.written > 0 && self.written + add > self.rotate_bytes {
            self.file.flush()?;
            let mut rotated = self.path.clone().into_os_string();
            rotated.push(".1");
            std::fs::rename(&self.path, PathBuf::from(rotated))?;
            self.file = std::fs::File::create(&self.path)?;
            self.written = 0;
        }
        self.file.write_all(line.as_bytes())?;
        self.file.write_all(b"\n")?;
        self.file.flush()?;
        self.written += add;
        Ok(())
    }
}

/// The process-wide structured logger; obtain it via [`logger`].
pub struct Logger {
    filter: Mutex<Filter>,
    ring: Mutex<Ring>,
    seq: AtomicU64,
    records_total: AtomicU64,
    stderr: AtomicBool,
    file: Mutex<Option<FileSink>>,
}

impl Logger {
    fn new(spec: &str) -> Logger {
        Logger {
            filter: Mutex::new(Filter::parse(spec)),
            ring: Mutex::new(Ring {
                buf: VecDeque::with_capacity(RING_CAPACITY.min(64)),
                dropped: 0,
            }),
            seq: AtomicU64::new(0),
            records_total: AtomicU64::new(0),
            stderr: AtomicBool::new(false),
            file: Mutex::new(None),
        }
    }

    /// Replaces the filter with one parsed from `spec` (the `--log`
    /// flag / `FDIP_LOG` syntax).
    pub fn set_filter_spec(&self, spec: &str) {
        *self.filter.lock().expect("log filter lock") = Filter::parse(spec);
    }

    /// Turns the stderr sink (one JSON line per record) on or off.
    pub fn set_stderr(&self, on: bool) {
        self.stderr.store(on, Ordering::Relaxed);
    }

    /// Attaches (or replaces) the file sink. The file is created if
    /// missing and appended to otherwise; once it would exceed
    /// `rotate_bytes`, it is renamed to `<path>.1` and restarted.
    ///
    /// # Errors
    ///
    /// Returns the I/O error if the file cannot be opened.
    pub fn set_file(&self, path: PathBuf, rotate_bytes: u64) -> io::Result<()> {
        let file = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(&path)?;
        let written = file.metadata().map(|m| m.len()).unwrap_or(0);
        *self.file.lock().expect("log file lock") = Some(FileSink {
            path,
            file,
            written,
            rotate_bytes: rotate_bytes.max(1),
        });
        Ok(())
    }

    /// Would a record at `level` for `target` be accepted right now?
    pub fn enabled(&self, level: Level, target: &str) -> bool {
        self.filter
            .lock()
            .expect("log filter lock")
            .enabled(level, target)
    }

    /// Emits one record (if the filter accepts it): into the ring and
    /// every active sink. Sink I/O errors are swallowed — logging must
    /// never take the daemon down.
    pub fn log(&self, level: Level, target: &str, msg: &str, fields: &[(&str, Json)]) {
        if !self.enabled(level, target) {
            return;
        }
        let record = LogRecord {
            seq: self.seq.fetch_add(1, Ordering::Relaxed) + 1,
            ts_ms: clock::unix_now_millis(),
            level,
            target: target.to_string(),
            msg: msg.to_string(),
            fields: fields
                .iter()
                .map(|(k, v)| ((*k).to_string(), v.clone()))
                .collect(),
        };
        self.records_total.fetch_add(1, Ordering::Relaxed);
        let line = record.to_json().to_string();
        if self.stderr.load(Ordering::Relaxed) {
            eprintln!("{line}");
        }
        if let Some(sink) = self.file.lock().expect("log file lock").as_mut() {
            let _ = sink.write_line(&line);
        }
        let mut ring = self.ring.lock().expect("log ring lock");
        ring.buf.push_back(record);
        while ring.buf.len() > RING_CAPACITY {
            ring.buf.pop_front();
            ring.dropped += 1;
        }
    }

    /// Returns ring records with `seq > since` that match the optional
    /// level/target filters — the **most recent** `limit` of them, in
    /// ascending `seq` order (tail semantics).
    pub fn recent(
        &self,
        since: u64,
        min_level: Option<Level>,
        target: Option<&str>,
        limit: usize,
    ) -> LogsPage {
        let ring = self.ring.lock().expect("log ring lock");
        let mut records: Vec<LogRecord> = ring
            .buf
            .iter()
            .filter(|r| r.seq > since)
            .filter(|r| min_level.is_none_or(|l| r.level >= l))
            .filter(|r| target.is_none_or(|t| r.target == t))
            .cloned()
            .collect();
        if records.len() > limit {
            records.drain(..records.len() - limit);
        }
        LogsPage {
            records,
            dropped: ring.dropped,
            next_since: self.seq.load(Ordering::Relaxed),
        }
    }

    /// The logger's own counters.
    pub fn stats(&self) -> LogStats {
        let ring = self.ring.lock().expect("log ring lock");
        LogStats {
            records_total: self.records_total.load(Ordering::Relaxed),
            dropped: ring.dropped,
            ring_len: ring.buf.len(),
            ring_capacity: RING_CAPACITY,
        }
    }
}

static LOGGER: OnceLock<Logger> = OnceLock::new();

/// The process-wide logger, created on first use with the filter from
/// the `FDIP_LOG` environment variable (default `info`), no stderr
/// sink, and no file sink.
pub fn logger() -> &'static Logger {
    LOGGER.get_or_init(|| Logger::new(std::env::var("FDIP_LOG").as_deref().unwrap_or("info")))
}

/// Emits one record through the global [`logger`].
pub fn log(level: Level, target: &str, msg: &str, fields: &[(&str, Json)]) {
    logger().log(level, target, msg, fields);
}

/// [`log`] at [`Level::Error`].
pub fn error(target: &str, msg: &str, fields: &[(&str, Json)]) {
    log(Level::Error, target, msg, fields);
}

/// [`log`] at [`Level::Warn`].
pub fn warn(target: &str, msg: &str, fields: &[(&str, Json)]) {
    log(Level::Warn, target, msg, fields);
}

/// [`log`] at [`Level::Info`].
pub fn info(target: &str, msg: &str, fields: &[(&str, Json)]) {
    log(Level::Info, target, msg, fields);
}

/// [`log`] at [`Level::Debug`].
pub fn debug(target: &str, msg: &str, fields: &[(&str, Json)]) {
    log(Level::Debug, target, msg, fields);
}

/// [`log`] at [`Level::Trace`].
pub fn trace(target: &str, msg: &str, fields: &[(&str, Json)]) {
    log(Level::Trace, target, msg, fields);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn filter_spec_parses_defaults_targets_and_off() {
        let f = Filter::parse("serve=debug,exec=off,warn");
        assert!(f.enabled(Level::Debug, "serve"));
        assert!(!f.enabled(Level::Trace, "serve"));
        assert!(!f.enabled(Level::Error, "exec"));
        assert!(f.enabled(Level::Warn, "other"));
        assert!(!f.enabled(Level::Info, "other"));
        // A bare target enables it fully; junk is ignored.
        let f = Filter::parse("harness, =nope, bogus=level");
        assert!(f.enabled(Level::Trace, "harness"));
        assert!(f.enabled(Level::Info, "other"));
        assert!(!f.enabled(Level::Debug, "other"));
    }

    #[test]
    fn record_serializes_with_the_documented_keys() {
        let r = LogRecord {
            seq: 7,
            ts_ms: 123,
            level: Level::Info,
            target: "serve".to_string(),
            msg: "hello".to_string(),
            fields: vec![("grid_id".to_string(), Json::from("abc"))],
        };
        let j = r.to_json();
        assert_eq!(j.get("seq").and_then(Json::as_u64), Some(7));
        assert_eq!(j.get("ts_ms").and_then(Json::as_u64), Some(123));
        assert_eq!(j.get("level").and_then(Json::as_str), Some("info"));
        assert_eq!(j.get("target").and_then(Json::as_str), Some("serve"));
        assert_eq!(j.get("msg").and_then(Json::as_str), Some("hello"));
        let fields = j.get("fields").expect("fields");
        assert_eq!(fields.get("grid_id").and_then(Json::as_str), Some("abc"));
        // One object per line: the compact form contains no newline.
        assert!(!j.to_string().contains('\n'));
    }

    #[test]
    fn ring_is_bounded_and_counts_drops() {
        let l = Logger::new("trace");
        for i in 0..(RING_CAPACITY as u64 + 50) {
            l.log(Level::Info, "t", "x", &[("i", Json::from(i))]);
        }
        let stats = l.stats();
        assert_eq!(stats.ring_len, RING_CAPACITY);
        assert_eq!(stats.dropped, 50);
        assert_eq!(stats.records_total, RING_CAPACITY as u64 + 50);
        let page = l.recent(0, None, None, usize::MAX);
        assert_eq!(page.records.len(), RING_CAPACITY);
        assert_eq!(page.records.first().unwrap().seq, 51);
        assert_eq!(page.next_since, RING_CAPACITY as u64 + 50);
    }

    #[test]
    fn recent_filters_by_seq_level_target_and_limit() {
        let l = Logger::new("trace");
        l.log(Level::Debug, "serve", "a", &[]);
        l.log(Level::Warn, "exec", "b", &[]);
        l.log(Level::Error, "serve", "c", &[]);
        l.log(Level::Info, "serve", "d", &[]);
        let page = l.recent(0, Some(Level::Warn), Some("serve"), 10);
        assert_eq!(page.records.len(), 1);
        assert_eq!(page.records[0].msg, "c");
        let page = l.recent(2, None, None, 10);
        assert_eq!(page.records.len(), 2);
        // Tail semantics: the most recent `limit`, ascending.
        let page = l.recent(0, None, None, 2);
        assert_eq!(page.records[0].msg, "c");
        assert_eq!(page.records[1].msg, "d");
    }

    #[test]
    fn filtered_out_records_cost_nothing_and_leave_no_trace() {
        let l = Logger::new("serve=info");
        l.log(Level::Debug, "serve", "quiet", &[]);
        l.log(Level::Info, "other", "default-level", &[]);
        assert_eq!(l.stats().records_total, 1);
        assert_eq!(l.recent(0, None, None, 10).records[0].msg, "default-level");
    }

    #[test]
    fn file_sink_rotates_by_rename() {
        let dir = std::env::temp_dir().join(format!("fdip-obs-log-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("daemon.log");
        let l = Logger::new("trace");
        l.set_file(path.clone(), 200).unwrap();
        for i in 0..20u64 {
            l.log(
                Level::Info,
                "t",
                "padding-padding-padding",
                &[("i", Json::from(i))],
            );
        }
        let rotated = dir.join("daemon.log.1");
        assert!(rotated.exists(), "rotation must rename to .1");
        let live = std::fs::read_to_string(&path).unwrap();
        let old = std::fs::read_to_string(&rotated).unwrap();
        assert!(live.len() as u64 <= 200);
        // Every line in both files is a parseable record.
        for line in live.lines().chain(old.lines()) {
            let j = Json::parse(line).expect("log line parses");
            assert!(j.get("seq").is_some());
        }
        let _ = std::fs::remove_dir_all(&dir);
    }
}
