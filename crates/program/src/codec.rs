//! JSON round-trip codec for [`Program`] images.
//!
//! Fuzz failures must be replayable: a minimized program is written to a
//! case file and decoded back into the *identical* [`Program`] later —
//! same image bytes, same behaviours, same entry — so a replay simulates
//! exactly what the original run simulated. The codec therefore
//! serializes the assembled image (not generator parameters): it
//! round-trips any structurally valid program regardless of how it was
//! produced (stochastic builder, CFG emitter, hand assembly).
//!
//! Floats (`Bias::p_taken`, `Sticky::switch_prob`) survive the trip
//! exactly because `fdip-telemetry` prints `f64` via Rust's shortest
//! round-trip `Display`. Pattern bits are hex strings so the full `u64`
//! range survives the signed JSON integer type.
//!
//! The document layout is specified in `docs/METRICS.md` (Document 7
//! appendix: program encoding).
//!
//! # Examples
//!
//! ```
//! use fdip_program::workload::{Workload, WorkloadFamily};
//! use fdip_program::codec::{program_from_json, program_to_json};
//!
//! let p = Workload::family_default("w", WorkloadFamily::Spec, 1).build();
//! let json = program_to_json(&p);
//! let back = program_from_json(&json).unwrap();
//! assert_eq!(back.image().len(), p.image().len());
//! assert_eq!(back.entry(), p.entry());
//! ```

use crate::behavior::{BranchBehavior, IndirectSelect};
use crate::image::{CodeImage, Program};
use std::fmt;

use fdip_telemetry::Json;
use fdip_types::{Addr, BranchKind, InstrKind, OpClass, StaticInstr};

/// Why a JSON document failed to decode into a [`Program`].
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct CodecError {
    msg: String,
}

impl CodecError {
    fn new(msg: impl Into<String>) -> Self {
        CodecError { msg: msg.into() }
    }
}

impl fmt::Display for CodecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "program decode: {}", self.msg)
    }
}

impl std::error::Error for CodecError {}

fn op_name(c: OpClass) -> &'static str {
    match c {
        OpClass::Alu => "alu",
        OpClass::Mul => "mul",
        OpClass::Fp => "fp",
        OpClass::Load => "load",
        OpClass::Store => "store",
    }
}

fn op_from_name(s: &str) -> Option<OpClass> {
    Some(match s {
        "alu" => OpClass::Alu,
        "mul" => OpClass::Mul,
        "fp" => OpClass::Fp,
        "load" => OpClass::Load,
        "store" => OpClass::Store,
        _ => return None,
    })
}

fn branch_name(k: BranchKind) -> &'static str {
    match k {
        BranchKind::CondDirect => "cond",
        BranchKind::DirectJump => "jmp",
        BranchKind::IndirectJump => "ijmp",
        BranchKind::DirectCall => "call",
        BranchKind::IndirectCall => "icall",
        BranchKind::Return => "ret",
    }
}

fn branch_from_name(s: &str) -> Option<BranchKind> {
    Some(match s {
        "cond" => BranchKind::CondDirect,
        "jmp" => BranchKind::DirectJump,
        "ijmp" => BranchKind::IndirectJump,
        "call" => BranchKind::DirectCall,
        "icall" => BranchKind::IndirectCall,
        "ret" => BranchKind::Return,
        _ => return None,
    })
}

fn select_to_json(s: IndirectSelect) -> Json {
    match s {
        IndirectSelect::Random => Json::from("random"),
        IndirectSelect::RoundRobin => Json::from("rr"),
        IndirectSelect::Sticky { switch_prob } => {
            Json::obj().with("k", "sticky").with("p", switch_prob)
        }
    }
}

fn select_from_json(j: &Json) -> Result<IndirectSelect, CodecError> {
    if let Some(s) = j.as_str() {
        return match s {
            "random" => Ok(IndirectSelect::Random),
            "rr" => Ok(IndirectSelect::RoundRobin),
            other => Err(CodecError::new(format!("unknown select `{other}`"))),
        };
    }
    match j.get("k").and_then(Json::as_str) {
        Some("sticky") => Ok(IndirectSelect::Sticky {
            switch_prob: j
                .get("p")
                .and_then(Json::as_f64)
                .ok_or_else(|| CodecError::new("sticky select missing `p`"))?,
        }),
        _ => Err(CodecError::new("malformed select")),
    }
}

fn behavior_to_json(b: &BranchBehavior) -> Json {
    match b {
        BranchBehavior::Bias { p_taken } => Json::obj().with("k", "bias").with("p", *p_taken),
        BranchBehavior::Pattern { bits, len } => Json::obj()
            .with("k", "pattern")
            .with("bits", format!("{bits:x}"))
            .with("len", u64::from(*len)),
        BranchBehavior::Loop { trip } => {
            Json::obj().with("k", "loop").with("trip", u64::from(*trip))
        }
        BranchBehavior::Indirect { targets, select } => Json::obj()
            .with("k", "indirect")
            .with(
                "targets",
                Json::Arr(targets.iter().map(|t| Json::from(t.raw())).collect()),
            )
            .with("sel", select_to_json(*select)),
    }
}

fn behavior_from_json(j: &Json) -> Result<BranchBehavior, CodecError> {
    let kind = j
        .get("k")
        .and_then(Json::as_str)
        .ok_or_else(|| CodecError::new("behaviour missing `k`"))?;
    match kind {
        "bias" => Ok(BranchBehavior::Bias {
            p_taken: j
                .get("p")
                .and_then(Json::as_f64)
                .ok_or_else(|| CodecError::new("bias missing `p`"))?,
        }),
        "pattern" => {
            let bits = j
                .get("bits")
                .and_then(Json::as_str)
                .and_then(|s| u64::from_str_radix(s, 16).ok())
                .ok_or_else(|| CodecError::new("pattern missing hex `bits`"))?;
            let len = j
                .get("len")
                .and_then(Json::as_u64)
                .filter(|&l| (1..=64).contains(&l))
                .ok_or_else(|| CodecError::new("pattern `len` out of range"))?;
            Ok(BranchBehavior::Pattern {
                bits,
                len: len as u8,
            })
        }
        "loop" => Ok(BranchBehavior::Loop {
            trip: j
                .get("trip")
                .and_then(Json::as_u64)
                .and_then(|t| u32::try_from(t).ok())
                .ok_or_else(|| CodecError::new("loop missing `trip`"))?,
        }),
        "indirect" => {
            let targets = j
                .get("targets")
                .and_then(Json::as_arr)
                .ok_or_else(|| CodecError::new("indirect missing `targets`"))?
                .iter()
                .map(|t| t.as_u64().map(Addr::new))
                .collect::<Option<Vec<_>>>()
                .ok_or_else(|| CodecError::new("non-integer indirect target"))?;
            if targets.is_empty() {
                return Err(CodecError::new("indirect with empty `targets`"));
            }
            let select = select_from_json(
                j.get("sel")
                    .ok_or_else(|| CodecError::new("indirect missing `sel`"))?,
            )?;
            Ok(BranchBehavior::Indirect { targets, select })
        }
        other => Err(CodecError::new(format!("unknown behaviour `{other}`"))),
    }
}

fn instr_to_json(i: StaticInstr) -> Json {
    match i.kind {
        InstrKind::Op(c) => Json::from(op_name(c)),
        InstrKind::Branch { kind, target } => Json::obj()
            .with("k", branch_name(kind))
            .with("t", target.raw()),
    }
}

fn instr_from_json(j: &Json) -> Result<StaticInstr, CodecError> {
    if let Some(s) = j.as_str() {
        return op_from_name(s)
            .map(StaticInstr::op)
            .ok_or_else(|| CodecError::new(format!("unknown op `{s}`")));
    }
    let kind = j
        .get("k")
        .and_then(Json::as_str)
        .and_then(branch_from_name)
        .ok_or_else(|| CodecError::new("malformed branch instruction"))?;
    let target = j
        .get("t")
        .and_then(Json::as_u64)
        .ok_or_else(|| CodecError::new("branch missing `t`"))?;
    Ok(StaticInstr::branch(kind, Addr::new(target)))
}

/// Serializes a program (image + behaviours + entry) to a JSON value.
pub fn program_to_json(p: &Program) -> Json {
    let image = p.image();
    let instrs: Vec<Json> = (0..image.len())
        .map(|i| instr_to_json(image.instr_at(image.addr_of(i))))
        .collect();
    let behaviors: Vec<Json> = (0..image.len())
        .filter_map(|i| {
            p.behavior_at(image.addr_of(i)).map(|b| {
                Json::obj()
                    .with("i", i as u64)
                    .with("b", behavior_to_json(b))
            })
        })
        .collect();
    Json::obj()
        .with("name", p.name())
        .with("base", image.base().raw())
        .with("entry", p.entry().raw())
        .with("instrs", Json::Arr(instrs))
        .with("behaviors", Json::Arr(behaviors))
}

/// Decodes a program serialized by [`program_to_json`].
///
/// # Errors
///
/// Returns a [`CodecError`] naming the first malformed field; also
/// rejects documents whose entry point or behaviour indices fall outside
/// the decoded image.
pub fn program_from_json(j: &Json) -> Result<Program, CodecError> {
    let name = j
        .get("name")
        .and_then(Json::as_str)
        .ok_or_else(|| CodecError::new("missing `name`"))?;
    let base = j
        .get("base")
        .and_then(Json::as_u64)
        .ok_or_else(|| CodecError::new("missing `base`"))?;
    let entry = j
        .get("entry")
        .and_then(Json::as_u64)
        .ok_or_else(|| CodecError::new("missing `entry`"))?;
    let instrs = j
        .get("instrs")
        .and_then(Json::as_arr)
        .ok_or_else(|| CodecError::new("missing `instrs`"))?
        .iter()
        .map(instr_from_json)
        .collect::<Result<Vec<_>, _>>()?;
    if instrs.is_empty() {
        return Err(CodecError::new("empty `instrs`"));
    }
    let mut behaviors: Vec<Option<BranchBehavior>> = vec![None; instrs.len()];
    for entry in j
        .get("behaviors")
        .and_then(Json::as_arr)
        .ok_or_else(|| CodecError::new("missing `behaviors`"))?
    {
        let idx = entry
            .get("i")
            .and_then(Json::as_u64)
            .ok_or_else(|| CodecError::new("behaviour entry missing `i`"))?
            as usize;
        if idx >= behaviors.len() {
            return Err(CodecError::new(format!(
                "behaviour index {idx} outside image"
            )));
        }
        behaviors[idx] =
            Some(behavior_from_json(entry.get("b").ok_or_else(|| {
                CodecError::new("behaviour entry missing `b`")
            })?)?);
    }
    let image = CodeImage::new(Addr::new(base), instrs);
    if !image.contains(Addr::new(entry)) {
        return Err(CodecError::new("entry point outside image"));
    }
    Ok(Program::new(name, image, behaviors, Addr::new(entry)))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workload::{Workload, WorkloadFamily};
    use crate::ExecutionEngine;

    fn assert_same_program(a: &Program, b: &Program) {
        assert_eq!(a.name(), b.name());
        assert_eq!(a.entry(), b.entry());
        assert_eq!(a.image().base(), b.image().base());
        assert_eq!(a.image().len(), b.image().len());
        for i in 0..a.image().len() {
            let addr = a.image().addr_of(i);
            assert_eq!(
                a.image().instr_at(addr),
                b.image().instr_at(addr),
                "slot {i}"
            );
            assert_eq!(a.behavior_at(addr), b.behavior_at(addr), "slot {i}");
        }
    }

    #[test]
    fn round_trip_preserves_every_slot() {
        for family in [
            WorkloadFamily::Server,
            WorkloadFamily::Client,
            WorkloadFamily::Spec,
        ] {
            let p = Workload::family_default("w", family, 9).build();
            let back = program_from_json(&program_to_json(&p)).unwrap();
            assert_same_program(&p, &back);
        }
    }

    #[test]
    fn round_trip_survives_text_serialization() {
        let p = Workload::family_default("w", WorkloadFamily::Server, 3).build();
        let text = program_to_json(&p).to_string();
        let back = program_from_json(&Json::parse(&text).unwrap()).unwrap();
        assert_same_program(&p, &back);
        // Decoded program produces the identical committed stream.
        let orig: Vec<_> = ExecutionEngine::new(&p, 5).take(2000).collect();
        let replay: Vec<_> = ExecutionEngine::new(&back, 5).take(2000).collect();
        assert_eq!(orig, replay);
    }

    #[test]
    fn rejects_malformed_documents() {
        let p = Workload::family_default("w", WorkloadFamily::Spec, 1).build();
        let good = program_to_json(&p);

        let mut no_entry = good.clone();
        no_entry.set("entry", 0x1u64);
        assert!(program_from_json(&no_entry)
            .unwrap_err()
            .to_string()
            .contains("entry"));

        let mut bad_behavior = good.clone();
        bad_behavior.set(
            "behaviors",
            Json::Arr(vec![Json::obj()
                .with("i", 1u64 << 40)
                .with("b", Json::obj().with("k", "loop").with("trip", 2u64))]),
        );
        assert!(program_from_json(&bad_behavior)
            .unwrap_err()
            .to_string()
            .contains("outside image"));

        assert!(program_from_json(&Json::obj()).is_err());
    }

    #[test]
    fn pattern_bits_round_trip_full_u64() {
        let b = BranchBehavior::Pattern {
            bits: u64::MAX,
            len: 64,
        };
        let back = behavior_from_json(&behavior_to_json(&b)).unwrap();
        assert_eq!(back, b);
    }
}
