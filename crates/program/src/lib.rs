#![forbid(unsafe_code)]
#![warn(missing_docs)]
//! Synthetic program model and workload generator for the FDIP
//! reproduction.
//!
//! The paper evaluates on the public IPC-1 traces (server / client / SPEC).
//! This crate substitutes a **synthetic program model**: a generated static
//! code image (functions, basic blocks, branch wiring) plus stochastic
//! branch-behaviour models, executed by a deterministic engine that yields
//! the committed-path instruction stream.
//!
//! The substitution is documented in `DESIGN.md` §2. It is deliberately
//! *stronger* than a trace for this paper's purposes: because the whole
//! static code image exists, the simulator's wrong-path fetches, pre-decode
//! (post-fetch correction), and BTB prefetching all operate on real
//! instruction bytes — something a committed-path trace cannot provide.
//!
//! # Examples
//!
//! Build a tiny program by hand and execute it:
//!
//! ```
//! use fdip_program::{Program, ProgramBuilder, ExecutionEngine};
//! use fdip_program::workload::{Workload, WorkloadFamily};
//!
//! let wl = Workload::family_default("demo", WorkloadFamily::Spec, 42);
//! let program = wl.build();
//! let mut engine = ExecutionEngine::new(&program, 7);
//! let first = engine.step();
//! assert_eq!(first.pc, program.entry());
//! ```

mod behavior;
mod builder;
pub mod cfg;
pub mod codec;
mod engine;
mod image;
pub mod workload;

pub use behavior::{BranchBehavior, IndirectSelect};
pub use builder::{ProgramBuilder, ProgramParams};
pub use cfg::{CfgBlock, CfgError, CfgFunction, CfgProgram, Terminator};
pub use codec::{program_from_json, program_to_json, CodecError};
pub use engine::ExecutionEngine;
pub use image::{CodeImage, Program};
