//! The static code image: a dense map from instruction addresses to
//! decoded instructions, plus per-branch behaviour attachments.

use crate::behavior::BranchBehavior;
use fdip_types::{Addr, StaticInstr, INSTR_BYTES};

/// Dense static code image.
///
/// Instructions occupy a contiguous address range starting at
/// [`CodeImage::base`]. Lookups outside the range return
/// [`StaticInstr::NOP`], so sequential wrong-path walks past the end of
/// the program are well defined (they behave like fetching padding).
#[derive(Clone, Debug, Default)]
pub struct CodeImage {
    base: Addr,
    instrs: Vec<StaticInstr>,
}

impl CodeImage {
    /// Creates an image with instructions laid out contiguously from `base`.
    pub fn new(base: Addr, instrs: Vec<StaticInstr>) -> Self {
        CodeImage { base, instrs }
    }

    /// Base (lowest) instruction address.
    pub fn base(&self) -> Addr {
        self.base
    }

    /// Number of instructions in the image.
    pub fn len(&self) -> usize {
        self.instrs.len()
    }

    /// Returns `true` if the image holds no instructions.
    pub fn is_empty(&self) -> bool {
        self.instrs.is_empty()
    }

    /// Total code footprint in bytes.
    pub fn footprint_bytes(&self) -> u64 {
        self.instrs.len() as u64 * INSTR_BYTES
    }

    /// Index of the instruction slot holding `addr`, if mapped.
    pub fn index_of(&self, addr: Addr) -> Option<usize> {
        let off = addr.raw().checked_sub(self.base.raw())?;
        let idx = (off / INSTR_BYTES) as usize;
        (idx < self.instrs.len()).then_some(idx)
    }

    /// Address of the instruction at slot `idx`.
    ///
    /// # Panics
    ///
    /// Panics if `idx` is out of bounds.
    pub fn addr_of(&self, idx: usize) -> Addr {
        assert!(idx < self.instrs.len(), "instruction index out of bounds");
        self.base + idx as u64 * INSTR_BYTES
    }

    /// Returns the instruction at `addr`, or [`StaticInstr::NOP`] when the
    /// address is unmapped. This is what pre-decode hardware "sees".
    pub fn instr_at(&self, addr: Addr) -> StaticInstr {
        self.index_of(addr)
            .map_or(StaticInstr::NOP, |i| self.instrs[i])
    }

    /// Returns `true` if `addr` falls inside the mapped range.
    pub fn contains(&self, addr: Addr) -> bool {
        self.index_of(addr).is_some()
    }
}

/// A complete synthetic program: static code image, per-branch behaviour
/// models, and the entry point.
#[derive(Clone, Debug)]
pub struct Program {
    image: CodeImage,
    /// Behaviour model per instruction slot (only branches have one).
    behaviors: Vec<Option<BranchBehavior>>,
    entry: Addr,
    name: String,
}

impl Program {
    /// Assembles a program from its parts.
    ///
    /// # Panics
    ///
    /// Panics if `behaviors` is not the same length as the image, or if
    /// `entry` is unmapped.
    pub fn new(
        name: impl Into<String>,
        image: CodeImage,
        behaviors: Vec<Option<BranchBehavior>>,
        entry: Addr,
    ) -> Self {
        assert_eq!(
            behaviors.len(),
            image.len(),
            "one behaviour slot per instruction required"
        );
        assert!(image.contains(entry), "entry point must be mapped");
        Program {
            image,
            behaviors,
            entry,
            name: name.into(),
        }
    }

    /// The static code image.
    pub fn image(&self) -> &CodeImage {
        &self.image
    }

    /// Entry-point address.
    pub fn entry(&self) -> Addr {
        self.entry
    }

    /// Human-readable workload name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Behaviour model of the branch at `addr`, if any.
    pub fn behavior_at(&self, addr: Addr) -> Option<&BranchBehavior> {
        self.image
            .index_of(addr)
            .and_then(|i| self.behaviors[i].as_ref())
    }

    /// Behaviour model by instruction slot index.
    pub(crate) fn behavior_by_index(&self, idx: usize) -> Option<&BranchBehavior> {
        self.behaviors.get(idx).and_then(|b| b.as_ref())
    }

    /// Number of static branch instructions.
    pub fn static_branch_count(&self) -> usize {
        (0..self.image.len())
            .filter(|&i| self.image.instrs[i].kind.is_branch())
            .count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fdip_types::{BranchKind, InstrKind, OpClass};

    fn tiny_image() -> CodeImage {
        CodeImage::new(
            Addr::new(0x1000),
            vec![
                StaticInstr::op(OpClass::Alu),
                StaticInstr::branch(BranchKind::DirectJump, Addr::new(0x1000)),
            ],
        )
    }

    #[test]
    fn index_round_trip() {
        let img = tiny_image();
        assert_eq!(img.index_of(Addr::new(0x1000)), Some(0));
        assert_eq!(img.index_of(Addr::new(0x1004)), Some(1));
        assert_eq!(img.addr_of(1), Addr::new(0x1004));
        assert_eq!(img.index_of(Addr::new(0x1008)), None);
        assert_eq!(img.index_of(Addr::new(0xfff)), None);
    }

    #[test]
    fn unmapped_reads_are_nops() {
        let img = tiny_image();
        assert_eq!(img.instr_at(Addr::new(0x2000)), StaticInstr::NOP);
        assert_eq!(img.instr_at(Addr::new(0x0)), StaticInstr::NOP);
    }

    #[test]
    fn footprint_is_four_bytes_per_instruction() {
        assert_eq!(tiny_image().footprint_bytes(), 8);
        assert_eq!(tiny_image().len(), 2);
        assert!(!tiny_image().is_empty());
        assert!(CodeImage::default().is_empty());
    }

    #[test]
    fn program_assembly_and_lookup() {
        let img = tiny_image();
        let behaviors = vec![None, None];
        let p = Program::new("t", img, behaviors, Addr::new(0x1000));
        assert_eq!(p.entry(), Addr::new(0x1000));
        assert_eq!(p.name(), "t");
        assert_eq!(p.static_branch_count(), 1);
        assert!(p.behavior_at(Addr::new(0x1004)).is_none());
        assert!(matches!(
            p.image().instr_at(Addr::new(0x1004)).kind,
            InstrKind::Branch { .. }
        ));
    }

    #[test]
    #[should_panic(expected = "entry point must be mapped")]
    fn unmapped_entry_panics() {
        let img = tiny_image();
        let _ = Program::new("t", img, vec![None, None], Addr::new(0x9000));
    }

    #[test]
    #[should_panic(expected = "one behaviour slot per instruction")]
    fn behavior_length_mismatch_panics() {
        let img = tiny_image();
        let _ = Program::new("t", img, vec![None], Addr::new(0x1000));
    }
}
