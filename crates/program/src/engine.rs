//! The execution engine: walks a [`Program`] and yields the committed-path
//! dynamic instruction stream.

use crate::behavior::BranchState;
use crate::image::Program;
use fdip_types::{Addr, BranchKind, DynInstr, InstrKind};
use rand::rngs::SmallRng;
use rand::SeedableRng;

/// Maximum call-stack depth the engine tracks; deeper calls drop the
/// oldest frame (matching a finite hardware RAS's eventual behaviour and
/// keeping memory bounded).
const MAX_STACK_DEPTH: usize = 256;

/// Deterministic interpreter over a synthetic [`Program`].
///
/// Given the same program and seed, the engine always produces the same
/// committed instruction stream. It never terminates on its own (generated
/// programs loop through their dispatcher forever); callers take as many
/// instructions as they need.
///
/// # Examples
///
/// ```
/// use fdip_program::{ProgramBuilder, ProgramParams, ExecutionEngine};
///
/// let program = ProgramBuilder::new(ProgramParams::default()).build("demo");
/// let stream: Vec<_> = ExecutionEngine::new(&program, 42).take(100).collect();
/// assert_eq!(stream.len(), 100);
/// // Committed path is contiguous: each next_pc is the next pc.
/// for w in stream.windows(2) {
///     assert_eq!(w[0].next_pc, w[1].pc);
/// }
/// ```
#[derive(Debug)]
pub struct ExecutionEngine<'a> {
    program: &'a Program,
    pc: Addr,
    ret_stack: Vec<Addr>,
    rng: SmallRng,
    states: Vec<BranchState>,
    executed: u64,
}

impl<'a> ExecutionEngine<'a> {
    /// Creates an engine at the program entry point.
    pub fn new(program: &'a Program, seed: u64) -> Self {
        ExecutionEngine {
            program,
            pc: program.entry(),
            ret_stack: Vec::with_capacity(MAX_STACK_DEPTH),
            rng: SmallRng::seed_from_u64(seed ^ 0x5eed_f00d),
            states: vec![BranchState::default(); program.image().len()],
            executed: 0,
        }
    }

    /// The program being executed.
    pub fn program(&self) -> &Program {
        self.program
    }

    /// Current program counter (address of the next instruction to issue).
    pub fn pc(&self) -> Addr {
        self.pc
    }

    /// Number of instructions executed so far.
    pub fn executed(&self) -> u64 {
        self.executed
    }

    /// Current call-stack depth.
    pub fn stack_depth(&self) -> usize {
        self.ret_stack.len()
    }

    /// Executes one instruction and returns it.
    pub fn step(&mut self) -> DynInstr {
        let image = self.program.image();
        if !image.contains(self.pc) {
            // Should not happen on a well-formed program; recover anyway.
            self.pc = self.program.entry();
            self.ret_stack.clear();
        }
        let pc = self.pc;
        let idx = image.index_of(pc).expect("pc is mapped");
        let si = image.instr_at(pc);

        let (taken, next_pc) = match si.kind {
            InstrKind::Op(_) => (false, pc.next_instr()),
            InstrKind::Branch { kind, target } => match kind {
                BranchKind::CondDirect => {
                    let taken = match self.program.behavior_by_index(idx) {
                        Some(b) => b.decide_direction(&mut self.states[idx], &mut self.rng),
                        // Behaviour-less conditional: treat as never taken.
                        None => false,
                    };
                    (taken, if taken { target } else { pc.next_instr() })
                }
                BranchKind::DirectJump => (true, target),
                BranchKind::DirectCall => {
                    self.push_return(pc.next_instr());
                    (true, target)
                }
                BranchKind::IndirectJump => (true, self.indirect_target(idx)),
                BranchKind::IndirectCall => {
                    self.push_return(pc.next_instr());
                    (true, self.indirect_target(idx))
                }
                BranchKind::Return => {
                    let t = self.ret_stack.pop().unwrap_or(self.program.entry());
                    (true, t)
                }
            },
        };

        let next_pc = if image.contains(next_pc) {
            next_pc
        } else {
            // Fell off the mapped range (e.g. fallthrough at image end):
            // restart at the dispatcher.
            self.ret_stack.clear();
            self.program.entry()
        };

        self.pc = next_pc;
        self.executed += 1;
        DynInstr {
            pc,
            kind: si.kind,
            taken,
            next_pc,
        }
    }

    fn push_return(&mut self, ra: Addr) {
        if self.ret_stack.len() >= MAX_STACK_DEPTH {
            self.ret_stack.remove(0);
        }
        self.ret_stack.push(ra);
    }

    fn indirect_target(&mut self, idx: usize) -> Addr {
        match self.program.behavior_by_index(idx) {
            Some(b) if b.is_indirect() => b.decide_target(&mut self.states[idx], &mut self.rng),
            // Behaviour-less indirect: restart the program.
            _ => self.program.entry(),
        }
    }
}

impl Iterator for ExecutionEngine<'_> {
    type Item = DynInstr;

    fn next(&mut self) -> Option<DynInstr> {
        Some(self.step())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::{ProgramBuilder, ProgramParams};
    use crate::image::CodeImage;
    use fdip_types::{OpClass, StaticInstr};
    use std::collections::HashSet;

    fn demo_program(seed: u64) -> Program {
        ProgramBuilder::new(ProgramParams {
            seed,
            num_funcs: 32,
            ..ProgramParams::default()
        })
        .build("demo")
    }

    #[test]
    fn committed_path_is_contiguous() {
        let p = demo_program(1);
        let stream: Vec<DynInstr> = ExecutionEngine::new(&p, 9).take(20_000).collect();
        for w in stream.windows(2) {
            assert_eq!(w[0].next_pc, w[1].pc, "gap after {}", w[0]);
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let p = demo_program(2);
        let a: Vec<DynInstr> = ExecutionEngine::new(&p, 5).take(5_000).collect();
        let b: Vec<DynInstr> = ExecutionEngine::new(&p, 5).take(5_000).collect();
        assert_eq!(a, b);
        let c: Vec<DynInstr> = ExecutionEngine::new(&p, 6).take(5_000).collect();
        assert_ne!(a, c);
    }

    #[test]
    fn non_branches_are_never_taken() {
        let p = demo_program(3);
        for d in ExecutionEngine::new(&p, 1).take(10_000) {
            if !d.is_branch() {
                assert!(!d.taken);
                assert_eq!(d.next_pc, d.pc.next_instr());
            }
        }
    }

    #[test]
    fn unconditional_branches_are_always_taken() {
        let p = demo_program(4);
        for d in ExecutionEngine::new(&p, 1).take(10_000) {
            if let InstrKind::Branch { kind, .. } = d.kind {
                if kind.is_unconditional() {
                    assert!(d.taken, "{d}");
                }
            }
        }
    }

    #[test]
    fn calls_and_returns_nest() {
        let p = demo_program(5);
        let mut eng = ExecutionEngine::new(&p, 1);
        let mut stack: Vec<Addr> = Vec::new();
        for _ in 0..50_000 {
            let d = eng.step();
            if let InstrKind::Branch { kind, .. } = d.kind {
                if kind.is_call() {
                    stack.push(d.pc.next_instr());
                } else if kind.is_return() {
                    if let Some(expect) = stack.pop() {
                        assert_eq!(d.next_pc, expect, "return to wrong site at {d}");
                    }
                }
            }
        }
    }

    #[test]
    fn touches_a_wide_footprint() {
        let p = demo_program(6);
        let lines: HashSet<u64> = ExecutionEngine::new(&p, 1)
            .take(100_000)
            .map(|d| d.pc.line_number())
            .collect();
        // The dispatcher rotates through many functions, so the dynamic
        // footprint should span a significant part of the image.
        let total_lines = p.image().footprint_bytes() / 64;
        assert!(
            lines.len() as u64 > total_lines / 4,
            "touched {} of {} lines",
            lines.len(),
            total_lines
        );
    }

    #[test]
    fn stack_depth_is_bounded() {
        let p = demo_program(7);
        let mut eng = ExecutionEngine::new(&p, 1);
        for _ in 0..100_000 {
            eng.step();
            assert!(eng.stack_depth() <= MAX_STACK_DEPTH);
        }
    }

    #[test]
    fn executed_counts_steps() {
        let p = demo_program(8);
        let mut eng = ExecutionEngine::new(&p, 1);
        for i in 0..100 {
            assert_eq!(eng.executed(), i);
            eng.step();
        }
    }

    #[test]
    fn recovers_from_fallthrough_off_image_end() {
        // Hand-build a pathological program: a single op at the end of the
        // image with no terminator; the engine must restart at the entry.
        let img = CodeImage::new(
            Addr::new(0x1000),
            vec![StaticInstr::op(OpClass::Alu), StaticInstr::op(OpClass::Alu)],
        );
        let p = Program::new("edge", img, vec![None, None], Addr::new(0x1000));
        let mut eng = ExecutionEngine::new(&p, 1);
        let d0 = eng.step();
        let d1 = eng.step();
        let d2 = eng.step();
        assert_eq!(d0.pc, Addr::new(0x1000));
        assert_eq!(d1.pc, Addr::new(0x1004));
        // Fallthrough off the end restarts at entry.
        assert_eq!(d1.next_pc, Addr::new(0x1000));
        assert_eq!(d2.pc, Addr::new(0x1000));
    }
}
