//! Explicit CFG-level program construction with **typed validation
//! errors** — the generation seam the workload fuzzer drives.
//!
//! [`ProgramBuilder`](crate::ProgramBuilder) generates well-formed
//! programs by construction and panics on bad parameters; external
//! generators (the `fdip-fuzz` CFG fuzzer, a future assembler frontend)
//! need the opposite contract: accept an arbitrary function/block/edge
//! description and *reject* malformed shapes with a typed
//! [`CfgError`] instead of panicking, so rejection paths themselves can
//! be tested and fuzzed.
//!
//! A [`CfgProgram`] is a list of functions; each [`CfgFunction`] is a
//! list of basic blocks; each [`CfgBlock`] carries its non-terminator
//! body and one [`Terminator`]. [`CfgProgram::emit`] validates the
//! whole description, then lays the blocks out contiguously and
//! assembles a [`Program`]. Function 0, block 0 is the entry.
//!
//! # Examples
//!
//! ```
//! use fdip_program::cfg::{CfgBlock, CfgFunction, CfgProgram, Terminator};
//! use fdip_program::BranchBehavior;
//! use fdip_types::OpClass;
//!
//! // One function: a two-iteration loop body, then spin on block 0.
//! let program = CfgProgram {
//!     funcs: vec![CfgFunction {
//!         blocks: vec![
//!             CfgBlock {
//!                 body: vec![OpClass::Alu, OpClass::Load],
//!                 term: Terminator::Cond {
//!                     block: 0,
//!                     behavior: BranchBehavior::Loop { trip: 2 },
//!                 },
//!             },
//!             CfgBlock {
//!                 body: vec![OpClass::Alu],
//!                 term: Terminator::Jump { block: 0 },
//!             },
//!         ],
//!     }],
//! }
//! .emit("loop2")
//! .unwrap();
//! assert_eq!(program.image().len(), 5);
//! ```

use crate::behavior::{BranchBehavior, IndirectSelect};
use crate::image::{CodeImage, Program};
use std::fmt;

use fdip_types::{Addr, BranchKind, OpClass, StaticInstr};

/// Base virtual address at which CFG-emitted code is laid out (the same
/// base the stochastic [`ProgramBuilder`](crate::ProgramBuilder) uses).
pub const CFG_CODE_BASE: u64 = 0x0010_0000;

/// How a basic block ends.
#[derive(Clone, PartialEq, Debug)]
pub enum Terminator {
    /// No control transfer: execution continues into the next block of
    /// the same function. Invalid in a function's final block.
    FallThrough,
    /// Unconditional direct jump to a block of the same function.
    Jump {
        /// Target block index within this function.
        block: usize,
    },
    /// Conditional direct branch: taken to `block`, otherwise falls
    /// through into the next block. Invalid in a function's final block
    /// (the not-taken path would run off the function).
    Cond {
        /// Taken-path target block index within this function.
        block: usize,
        /// Direction behaviour (must not be
        /// [`BranchBehavior::Indirect`]).
        behavior: BranchBehavior,
    },
    /// Direct call to another function's entry block; execution resumes
    /// in the next block after the callee returns. Invalid in a final
    /// block.
    Call {
        /// Callee function index.
        func: usize,
    },
    /// Register-indirect call choosing among several callees. Invalid
    /// in a final block.
    IndirectCall {
        /// Candidate callee function indices (non-empty).
        funcs: Vec<usize>,
        /// Target-selection policy.
        select: IndirectSelect,
    },
    /// Register-indirect jump choosing among blocks of this function.
    IndirectJump {
        /// Candidate target block indices (non-empty).
        blocks: Vec<usize>,
        /// Target-selection policy.
        select: IndirectSelect,
    },
    /// Function return (to the caller's next block).
    Return,
}

impl Terminator {
    /// Returns `true` if control never falls past this terminator into
    /// the following block — the only terminators valid in a function's
    /// final block.
    pub fn closes_function(&self) -> bool {
        matches!(
            self,
            Terminator::Jump { .. } | Terminator::IndirectJump { .. } | Terminator::Return
        )
    }
}

/// One basic block: straight-line body instructions plus a terminator.
#[derive(Clone, PartialEq, Debug)]
pub struct CfgBlock {
    /// Non-terminator instructions, in order (may be empty).
    pub body: Vec<OpClass>,
    /// How the block ends.
    pub term: Terminator,
}

/// One function: a non-empty list of basic blocks; block 0 is the
/// function entry.
#[derive(Clone, PartialEq, Debug)]
pub struct CfgFunction {
    /// Basic blocks in layout order.
    pub blocks: Vec<CfgBlock>,
}

/// A whole program at CFG level. Function 0, block 0 is the program
/// entry.
#[derive(Clone, PartialEq, Debug)]
pub struct CfgProgram {
    /// Functions in layout order (non-empty; function 0 is the entry).
    pub funcs: Vec<CfgFunction>,
}

/// Why a [`CfgProgram`] was rejected by [`CfgProgram::emit`].
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum CfgError {
    /// The program has no functions.
    NoFunctions,
    /// A function has no blocks.
    EmptyFunction {
        /// Offending function index.
        func: usize,
    },
    /// A function's final block can fall off the end of the function
    /// ([`Terminator::FallThrough`], [`Terminator::Cond`],
    /// [`Terminator::Call`], or [`Terminator::IndirectCall`] in last
    /// position).
    UnterminatedBlock {
        /// Function index.
        func: usize,
        /// Block index (always the function's last block).
        block: usize,
    },
    /// A block or function index in a terminator is out of range.
    OutOfRangeTarget {
        /// Function holding the bad terminator.
        func: usize,
        /// Block holding the bad terminator.
        block: usize,
        /// The out-of-range index as written.
        target: usize,
        /// `true` when `target` indexed the function table, `false`
        /// when it indexed this function's blocks.
        is_func: bool,
    },
    /// An indirect terminator has an empty target list.
    EmptyTargetList {
        /// Function index.
        func: usize,
        /// Block index.
        block: usize,
    },
    /// A [`Terminator::Cond`] carries an indirect (target-selection)
    /// behaviour instead of a direction behaviour.
    DirectionBehaviorExpected {
        /// Function index.
        func: usize,
        /// Block index.
        block: usize,
    },
}

impl fmt::Display for CfgError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CfgError::NoFunctions => write!(f, "program has no functions"),
            CfgError::EmptyFunction { func } => write!(f, "function {func} has no blocks"),
            CfgError::UnterminatedBlock { func, block } => write!(
                f,
                "function {func} block {block} is unterminated: control can fall off \
                 the end of the function"
            ),
            CfgError::OutOfRangeTarget {
                func,
                block,
                target,
                is_func,
            } => {
                let kind = if *is_func { "function" } else { "block" };
                write!(
                    f,
                    "function {func} block {block}: {kind} target {target} is out of range"
                )
            }
            CfgError::EmptyTargetList { func, block } => write!(
                f,
                "function {func} block {block}: indirect terminator with no targets"
            ),
            CfgError::DirectionBehaviorExpected { func, block } => write!(
                f,
                "function {func} block {block}: conditional branch carries an indirect \
                 behaviour"
            ),
        }
    }
}

impl std::error::Error for CfgError {}

impl CfgProgram {
    /// Validates the description without emitting.
    ///
    /// # Errors
    ///
    /// Returns the first [`CfgError`] in `(func, block)` order.
    pub fn validate(&self) -> Result<(), CfgError> {
        if self.funcs.is_empty() {
            return Err(CfgError::NoFunctions);
        }
        for (fi, func) in self.funcs.iter().enumerate() {
            if func.blocks.is_empty() {
                return Err(CfgError::EmptyFunction { func: fi });
            }
            let nblocks = func.blocks.len();
            for (bi, block) in func.blocks.iter().enumerate() {
                let last = bi + 1 == nblocks;
                if last && !block.term.closes_function() {
                    return Err(CfgError::UnterminatedBlock {
                        func: fi,
                        block: bi,
                    });
                }
                let bad_block = |target: usize| CfgError::OutOfRangeTarget {
                    func: fi,
                    block: bi,
                    target,
                    is_func: false,
                };
                let bad_func = |target: usize| CfgError::OutOfRangeTarget {
                    func: fi,
                    block: bi,
                    target,
                    is_func: true,
                };
                match &block.term {
                    Terminator::FallThrough | Terminator::Return => {}
                    Terminator::Jump { block: t } => {
                        if *t >= nblocks {
                            return Err(bad_block(*t));
                        }
                    }
                    Terminator::Cond { block: t, behavior } => {
                        if *t >= nblocks {
                            return Err(bad_block(*t));
                        }
                        if behavior.is_indirect() {
                            return Err(CfgError::DirectionBehaviorExpected {
                                func: fi,
                                block: bi,
                            });
                        }
                    }
                    Terminator::Call { func: t } => {
                        if *t >= self.funcs.len() {
                            return Err(bad_func(*t));
                        }
                    }
                    Terminator::IndirectCall { funcs, .. } => {
                        if funcs.is_empty() {
                            return Err(CfgError::EmptyTargetList {
                                func: fi,
                                block: bi,
                            });
                        }
                        if let Some(&t) = funcs.iter().find(|&&t| t >= self.funcs.len()) {
                            return Err(bad_func(t));
                        }
                    }
                    Terminator::IndirectJump { blocks, .. } => {
                        if blocks.is_empty() {
                            return Err(CfgError::EmptyTargetList {
                                func: fi,
                                block: bi,
                            });
                        }
                        if let Some(&t) = blocks.iter().find(|&&t| t >= nblocks) {
                            return Err(bad_block(t));
                        }
                    }
                }
            }
        }
        Ok(())
    }

    /// Validates, lays the functions out contiguously from
    /// [`CFG_CODE_BASE`], and assembles a [`Program`] named `name`.
    ///
    /// # Errors
    ///
    /// Returns the first [`CfgError`] the description violates; on
    /// success the emitted program is structurally valid (all direct
    /// targets mapped, every indirect branch has in-image targets).
    pub fn emit(&self, name: &str) -> Result<Program, CfgError> {
        self.validate()?;

        // Pass 1: layout. Every block occupies body.len() instructions
        // plus one terminator slot (FallThrough terminators become plain
        // ops, like the stochastic builder's fallthrough blocks).
        let mut func_starts = Vec::with_capacity(self.funcs.len());
        let mut block_starts: Vec<Vec<usize>> = Vec::with_capacity(self.funcs.len());
        let mut cursor = 0usize;
        for func in &self.funcs {
            func_starts.push(cursor);
            let mut starts = Vec::with_capacity(func.blocks.len());
            for block in &func.blocks {
                starts.push(cursor);
                cursor += block.body.len() + 1;
            }
            block_starts.push(starts);
        }
        let base = Addr::new(CFG_CODE_BASE);
        let addr_of = |idx: usize| base + idx as u64 * fdip_types::INSTR_BYTES;

        // Pass 2: fill instructions and behaviours.
        let mut instrs = vec![StaticInstr::NOP; cursor];
        let mut behaviors: Vec<Option<BranchBehavior>> = vec![None; cursor];
        for (fi, func) in self.funcs.iter().enumerate() {
            for (bi, block) in func.blocks.iter().enumerate() {
                let start = block_starts[fi][bi];
                for (i, &op) in block.body.iter().enumerate() {
                    instrs[start + i] = StaticInstr::op(op);
                }
                let term = start + block.body.len();
                let (instr, behavior) = match &block.term {
                    Terminator::FallThrough => (StaticInstr::op(OpClass::Alu), None),
                    Terminator::Jump { block: t } => (
                        StaticInstr::branch(BranchKind::DirectJump, addr_of(block_starts[fi][*t])),
                        None,
                    ),
                    Terminator::Cond { block: t, behavior } => (
                        StaticInstr::branch(BranchKind::CondDirect, addr_of(block_starts[fi][*t])),
                        Some(behavior.clone()),
                    ),
                    Terminator::Call { func: t } => (
                        StaticInstr::branch(BranchKind::DirectCall, addr_of(func_starts[*t])),
                        None,
                    ),
                    Terminator::IndirectCall { funcs, select } => (
                        StaticInstr::branch(BranchKind::IndirectCall, Addr::NULL),
                        Some(BranchBehavior::Indirect {
                            targets: funcs.iter().map(|&t| addr_of(func_starts[t])).collect(),
                            select: *select,
                        }),
                    ),
                    Terminator::IndirectJump { blocks, select } => (
                        StaticInstr::branch(BranchKind::IndirectJump, Addr::NULL),
                        Some(BranchBehavior::Indirect {
                            targets: blocks
                                .iter()
                                .map(|&t| addr_of(block_starts[fi][t]))
                                .collect(),
                            select: *select,
                        }),
                    ),
                    Terminator::Return => {
                        (StaticInstr::branch(BranchKind::Return, Addr::NULL), None)
                    }
                };
                instrs[term] = instr;
                behaviors[term] = behavior;
            }
        }

        Ok(Program::new(
            name,
            CodeImage::new(base, instrs),
            behaviors,
            addr_of(0),
        ))
    }

    /// Total instruction count the emitted image will have.
    pub fn instr_count(&self) -> usize {
        self.funcs
            .iter()
            .flat_map(|f| &f.blocks)
            .map(|b| b.body.len() + 1)
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::ExecutionEngine;

    fn leaf_fn() -> CfgFunction {
        CfgFunction {
            blocks: vec![CfgBlock {
                body: vec![OpClass::Alu],
                term: Terminator::Return,
            }],
        }
    }

    fn spinning_entry(extra: Vec<CfgBlock>) -> CfgFunction {
        let mut blocks = extra;
        blocks.push(CfgBlock {
            body: vec![OpClass::Load],
            term: Terminator::Jump { block: 0 },
        });
        CfgFunction { blocks }
    }

    #[test]
    fn minimal_program_emits_and_runs() {
        let p = CfgProgram {
            funcs: vec![spinning_entry(vec![])],
        }
        .emit("spin")
        .unwrap();
        assert_eq!(p.image().len(), 2);
        let stream: Vec<_> = ExecutionEngine::new(&p, 1).take(100).collect();
        for w in stream.windows(2) {
            assert_eq!(w[0].next_pc, w[1].pc);
        }
    }

    #[test]
    fn calls_lay_out_across_functions() {
        let p = CfgProgram {
            funcs: vec![
                spinning_entry(vec![CfgBlock {
                    body: vec![],
                    term: Terminator::Call { func: 1 },
                }]),
                leaf_fn(),
            ],
        }
        .emit("call")
        .unwrap();
        // Entry call block (1 instr) + spin block (2) + leaf (2).
        assert_eq!(p.image().len(), 5);
        // The call targets the leaf's entry (slot 3).
        let call = p.image().instr_at(p.image().addr_of(0));
        assert_eq!(call.kind.static_target(), Some(p.image().addr_of(3)));
    }

    #[test]
    fn rejects_unterminated_final_block() {
        for term in [
            Terminator::FallThrough,
            Terminator::Call { func: 0 },
            Terminator::Cond {
                block: 0,
                behavior: BranchBehavior::Bias { p_taken: 0.5 },
            },
        ] {
            let err = CfgProgram {
                funcs: vec![CfgFunction {
                    blocks: vec![CfgBlock {
                        body: vec![OpClass::Alu],
                        term,
                    }],
                }],
            }
            .emit("bad")
            .unwrap_err();
            assert_eq!(err, CfgError::UnterminatedBlock { func: 0, block: 0 });
        }
    }

    #[test]
    fn rejects_out_of_range_block_target() {
        let err = CfgProgram {
            funcs: vec![spinning_entry(vec![CfgBlock {
                body: vec![],
                term: Terminator::Cond {
                    block: 7,
                    behavior: BranchBehavior::Bias { p_taken: 0.5 },
                },
            }])],
        }
        .emit("bad")
        .unwrap_err();
        assert_eq!(
            err,
            CfgError::OutOfRangeTarget {
                func: 0,
                block: 0,
                target: 7,
                is_func: false
            }
        );
    }

    #[test]
    fn rejects_out_of_range_callee() {
        let err = CfgProgram {
            funcs: vec![spinning_entry(vec![CfgBlock {
                body: vec![],
                term: Terminator::Call { func: 3 },
            }])],
        }
        .emit("bad")
        .unwrap_err();
        assert_eq!(
            err,
            CfgError::OutOfRangeTarget {
                func: 0,
                block: 0,
                target: 3,
                is_func: true
            }
        );
    }

    #[test]
    fn rejects_empty_indirect_target_list() {
        let err = CfgProgram {
            funcs: vec![spinning_entry(vec![CfgBlock {
                body: vec![],
                term: Terminator::IndirectCall {
                    funcs: vec![],
                    select: IndirectSelect::RoundRobin,
                },
            }])],
        }
        .emit("bad")
        .unwrap_err();
        assert_eq!(err, CfgError::EmptyTargetList { func: 0, block: 0 });
    }

    #[test]
    fn rejects_indirect_behavior_on_conditional() {
        let err = CfgProgram {
            funcs: vec![spinning_entry(vec![CfgBlock {
                body: vec![],
                term: Terminator::Cond {
                    block: 1,
                    behavior: BranchBehavior::Indirect {
                        targets: vec![Addr::new(0x10)],
                        select: IndirectSelect::RoundRobin,
                    },
                },
            }])],
        }
        .emit("bad")
        .unwrap_err();
        assert_eq!(
            err,
            CfgError::DirectionBehaviorExpected { func: 0, block: 0 }
        );
    }

    #[test]
    fn rejects_empty_shapes() {
        assert_eq!(
            CfgProgram { funcs: vec![] }.emit("bad").unwrap_err(),
            CfgError::NoFunctions
        );
        assert_eq!(
            CfgProgram {
                funcs: vec![CfgFunction { blocks: vec![] }],
            }
            .emit("bad")
            .unwrap_err(),
            CfgError::EmptyFunction { func: 0 }
        );
    }

    #[test]
    fn errors_display_a_location() {
        let e = CfgError::OutOfRangeTarget {
            func: 2,
            block: 3,
            target: 9,
            is_func: false,
        };
        let s = e.to_string();
        assert!(s.contains("function 2"), "{s}");
        assert!(s.contains("block 3"), "{s}");
        assert!(s.contains('9'), "{s}");
    }

    #[test]
    fn instr_count_matches_emitted_image() {
        let cfg = CfgProgram {
            funcs: vec![
                spinning_entry(vec![CfgBlock {
                    body: vec![OpClass::Alu, OpClass::Store],
                    term: Terminator::Call { func: 1 },
                }]),
                leaf_fn(),
            ],
        };
        let p = cfg.emit("n").unwrap();
        assert_eq!(cfg.instr_count(), p.image().len());
    }
}
