//! Stochastic branch-behaviour models attached to static branches.
//!
//! Each conditional branch in a generated program carries a behaviour that
//! decides its direction at each dynamic execution; each indirect branch
//! carries a target-selection behaviour. All decisions are driven by the
//! execution engine's seeded RNG and small per-branch state, so a given
//! `(program, engine seed)` pair always produces the same committed stream.

use fdip_types::Addr;
use rand::Rng;

/// How an indirect branch picks among its possible targets.
#[derive(Copy, Clone, PartialEq, Debug)]
pub enum IndirectSelect {
    /// Uniform random choice each execution (hard for ITTAGE).
    Random,
    /// Strict rotation through the target list (history-predictable).
    RoundRobin,
    /// Mostly the same target with occasional random switches
    /// (monomorphic-ish call sites; easy for BTB/ITTAGE).
    Sticky {
        /// Probability of switching to a new random target, in [0, 1].
        switch_prob: f64,
    },
}

/// Behaviour model for one static branch.
#[derive(Clone, PartialEq, Debug)]
pub enum BranchBehavior {
    /// Conditional branch taken with fixed probability `p_taken`.
    Bias {
        /// Probability of being taken, in [0, 1].
        p_taken: f64,
    },
    /// Conditional branch following a fixed periodic pattern of directions
    /// (LSB first). Perfectly predictable given enough history.
    Pattern {
        /// Direction bits, least-significant bit first.
        bits: u64,
        /// Pattern period, 1..=64.
        len: u8,
    },
    /// Loop back-edge: taken `trip - 1` consecutive times, then not taken
    /// once (a `trip`-iteration loop).
    Loop {
        /// Loop trip count, >= 1.
        trip: u32,
    },
    /// Indirect branch choosing among `targets`.
    Indirect {
        /// Candidate targets (non-empty).
        targets: Vec<Addr>,
        /// Selection policy.
        select: IndirectSelect,
    },
}

/// Mutable per-branch dynamic state kept by the execution engine.
#[derive(Copy, Clone, Default, Debug)]
pub struct BranchState {
    /// Iterations executed in the current loop instance / pattern position.
    pub counter: u32,
    /// Last chosen indirect-target index.
    pub last_target: u32,
}

impl BranchBehavior {
    /// Decides the direction of a conditional branch.
    ///
    /// # Panics
    ///
    /// Panics if called on an [`BranchBehavior::Indirect`] behaviour.
    pub fn decide_direction<R: Rng>(&self, state: &mut BranchState, rng: &mut R) -> bool {
        match *self {
            BranchBehavior::Bias { p_taken } => rng.gen_bool(p_taken.clamp(0.0, 1.0)),
            BranchBehavior::Pattern { bits, len } => {
                let len = len.clamp(1, 64) as u32;
                let taken = (bits >> (state.counter % len)) & 1 == 1;
                state.counter = (state.counter + 1) % len;
                taken
            }
            BranchBehavior::Loop { trip } => {
                let trip = trip.max(1);
                state.counter += 1;
                if state.counter >= trip {
                    state.counter = 0;
                    false
                } else {
                    true
                }
            }
            BranchBehavior::Indirect { .. } => {
                panic!("indirect behaviour asked for a direction")
            }
        }
    }

    /// Picks the target of an indirect branch.
    ///
    /// # Panics
    ///
    /// Panics if called on a non-indirect behaviour or with no targets.
    pub fn decide_target<R: Rng>(&self, state: &mut BranchState, rng: &mut R) -> Addr {
        match self {
            BranchBehavior::Indirect { targets, select } => {
                assert!(!targets.is_empty(), "indirect branch with no targets");
                let idx = match *select {
                    IndirectSelect::Random => rng.gen_range(0..targets.len()),
                    IndirectSelect::RoundRobin => {
                        let idx = state.last_target as usize % targets.len();
                        state.last_target = ((idx + 1) % targets.len()) as u32;
                        return targets[idx];
                    }
                    IndirectSelect::Sticky { switch_prob } => {
                        if rng.gen_bool(switch_prob.clamp(0.0, 1.0)) {
                            rng.gen_range(0..targets.len())
                        } else {
                            state.last_target as usize % targets.len()
                        }
                    }
                };
                state.last_target = idx as u32;
                targets[idx]
            }
            _ => panic!("direction behaviour asked for a target"),
        }
    }

    /// Returns `true` for indirect-target behaviours.
    pub fn is_indirect(&self) -> bool {
        matches!(self, BranchBehavior::Indirect { .. })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn rng() -> SmallRng {
        SmallRng::seed_from_u64(0xfd1f)
    }

    #[test]
    fn bias_extremes_are_deterministic() {
        let mut st = BranchState::default();
        let mut r = rng();
        let never = BranchBehavior::Bias { p_taken: 0.0 };
        let always = BranchBehavior::Bias { p_taken: 1.0 };
        for _ in 0..100 {
            assert!(!never.decide_direction(&mut st, &mut r));
            assert!(always.decide_direction(&mut st, &mut r));
        }
    }

    #[test]
    fn bias_mid_is_mixed() {
        let mut st = BranchState::default();
        let mut r = rng();
        let b = BranchBehavior::Bias { p_taken: 0.5 };
        let taken = (0..1000)
            .filter(|_| b.decide_direction(&mut st, &mut r))
            .count();
        assert!((300..700).contains(&taken), "taken={taken}");
    }

    #[test]
    fn pattern_repeats_with_period() {
        // Pattern T N T T (LSB first: bits 0b1101).
        let b = BranchBehavior::Pattern {
            bits: 0b1011,
            len: 4,
        };
        let mut st = BranchState::default();
        let mut r = rng();
        let seq: Vec<bool> = (0..8)
            .map(|_| b.decide_direction(&mut st, &mut r))
            .collect();
        assert_eq!(seq, vec![true, true, false, true, true, true, false, true]);
    }

    #[test]
    fn loop_trip_count_shape() {
        let b = BranchBehavior::Loop { trip: 4 };
        let mut st = BranchState::default();
        let mut r = rng();
        // A 4-trip loop back-edge: T T T N, repeating.
        let seq: Vec<bool> = (0..8)
            .map(|_| b.decide_direction(&mut st, &mut r))
            .collect();
        assert_eq!(seq, vec![true, true, true, false, true, true, true, false]);
    }

    #[test]
    fn loop_trip_one_never_taken() {
        let b = BranchBehavior::Loop { trip: 1 };
        let mut st = BranchState::default();
        let mut r = rng();
        for _ in 0..5 {
            assert!(!b.decide_direction(&mut st, &mut r));
        }
    }

    #[test]
    fn round_robin_rotates() {
        let targets = vec![Addr::new(0x10), Addr::new(0x20), Addr::new(0x30)];
        let b = BranchBehavior::Indirect {
            targets: targets.clone(),
            select: IndirectSelect::RoundRobin,
        };
        let mut st = BranchState::default();
        let mut r = rng();
        let picks: Vec<Addr> = (0..6).map(|_| b.decide_target(&mut st, &mut r)).collect();
        assert_eq!(picks[0], targets[0]);
        assert_eq!(picks[1], targets[1]);
        assert_eq!(picks[2], targets[2]);
        assert_eq!(picks[3], targets[0]);
    }

    #[test]
    fn sticky_mostly_repeats() {
        let targets = vec![Addr::new(0x10), Addr::new(0x20), Addr::new(0x30)];
        let b = BranchBehavior::Indirect {
            targets,
            select: IndirectSelect::Sticky { switch_prob: 0.01 },
        };
        let mut st = BranchState::default();
        let mut r = rng();
        let first = b.decide_target(&mut st, &mut r);
        let repeats = (0..100)
            .filter(|_| b.decide_target(&mut st, &mut r) == first)
            .count();
        assert!(repeats > 60, "repeats={repeats}");
    }

    #[test]
    fn random_select_covers_targets() {
        let targets = vec![Addr::new(0x10), Addr::new(0x20)];
        let b = BranchBehavior::Indirect {
            targets: targets.clone(),
            select: IndirectSelect::Random,
        };
        let mut st = BranchState::default();
        let mut r = rng();
        let mut seen = std::collections::HashSet::new();
        for _ in 0..100 {
            seen.insert(b.decide_target(&mut st, &mut r));
        }
        assert_eq!(seen.len(), targets.len());
    }

    #[test]
    #[should_panic(expected = "indirect behaviour asked for a direction")]
    fn indirect_direction_panics() {
        let b = BranchBehavior::Indirect {
            targets: vec![Addr::new(0x10)],
            select: IndirectSelect::Random,
        };
        b.decide_direction(&mut BranchState::default(), &mut rng());
    }

    #[test]
    #[should_panic(expected = "direction behaviour asked for a target")]
    fn direction_target_panics() {
        let b = BranchBehavior::Bias { p_taken: 0.5 };
        b.decide_target(&mut BranchState::default(), &mut rng());
    }
}
