//! Generates synthetic programs: a layered call graph of functions made of
//! basic blocks, with stochastic branch behaviours attached.
//!
//! The generator mirrors the structural properties that make the IPC-1
//! server/client workloads frontend-bound: large static code footprints,
//! frequent calls through a dispatcher, a mix of strongly-biased and mixed
//! conditionals, loops, and indirect jumps/calls.
//!
//! The call graph is layered (a function at level `L` only calls functions
//! at deeper levels), so call/return nesting is bounded and every return
//! has a matching call.

use crate::behavior::{BranchBehavior, IndirectSelect};
use crate::image::{CodeImage, Program};
use fdip_types::{Addr, BranchKind, OpClass, StaticInstr};
use rand::rngs::SmallRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

/// Tunable parameters of the synthetic program generator.
///
/// Fractions are probabilities in `[0, 1]`; the terminator-kind fractions
/// (`cond`, `call`, `jump`, `indirect_jump`) are tried in that order and
/// should sum to at most 1 (the remainder becomes plain fallthrough).
#[derive(Clone, Debug)]
pub struct ProgramParams {
    /// RNG seed for the static structure (layout and wiring).
    pub seed: u64,
    /// Number of functions, including the dispatcher (function 0).
    pub num_funcs: usize,
    /// Inclusive range of basic blocks per function.
    pub blocks_per_func: (usize, usize),
    /// Inclusive range of instructions per basic block (including the
    /// terminator slot).
    pub instrs_per_block: (usize, usize),
    /// Number of call-graph levels below the dispatcher.
    pub call_levels: usize,
    /// Probability that a block terminator is a conditional branch.
    pub cond_fraction: f64,
    /// Probability that a block terminator is a function call.
    pub call_fraction: f64,
    /// Probability that a block terminator is a direct jump.
    pub jump_fraction: f64,
    /// Probability that a block terminator is an indirect (switch) jump.
    pub indirect_jump_fraction: f64,
    /// Fraction of calls that are register-indirect.
    pub indirect_call_fraction: f64,
    /// Fraction of conditionals that are strongly biased (p near 0 or 1).
    pub strongly_biased_fraction: f64,
    /// Fraction of conditionals that are loop back-edges.
    pub loop_fraction: f64,
    /// Fraction of conditionals that follow a fixed periodic pattern.
    pub pattern_fraction: f64,
    /// Inclusive range of loop trip counts.
    pub loop_trip: (u32, u32),
    /// Fraction of non-branch instructions that are loads/stores.
    pub mem_fraction: f64,
    /// Number of level-1 functions the dispatcher rotates through.
    pub dispatcher_fanout: usize,
}

impl Default for ProgramParams {
    fn default() -> Self {
        ProgramParams {
            seed: 1,
            num_funcs: 256,
            blocks_per_func: (3, 10),
            instrs_per_block: (3, 9),
            call_levels: 4,
            cond_fraction: 0.45,
            call_fraction: 0.20,
            jump_fraction: 0.08,
            indirect_jump_fraction: 0.04,
            indirect_call_fraction: 0.15,
            strongly_biased_fraction: 0.5,
            loop_fraction: 0.15,
            pattern_fraction: 0.15,
            loop_trip: (3, 24),
            mem_fraction: 0.35,
            dispatcher_fanout: 32,
        }
    }
}

/// Base virtual address at which generated code is laid out.
const CODE_BASE: u64 = 0x0010_0000;

/// Dispatcher block count: enough calls to spread over the footprint.
const DISPATCHER_BLOCKS: usize = 8;

struct FuncPlan {
    level: usize,
    /// Instruction index of each block start.
    block_starts: Vec<usize>,
    /// One-past-the-end instruction index.
    end: usize,
}

impl FuncPlan {
    fn start(&self) -> usize {
        self.block_starts[0]
    }
}

/// Builds a [`Program`] from [`ProgramParams`].
///
/// # Examples
///
/// ```
/// use fdip_program::{ProgramBuilder, ProgramParams};
///
/// let program = ProgramBuilder::new(ProgramParams::default()).build("demo");
/// assert!(program.image().len() > 100);
/// assert!(program.static_branch_count() > 10);
/// ```
#[derive(Debug)]
pub struct ProgramBuilder {
    params: ProgramParams,
}

impl ProgramBuilder {
    /// Creates a builder for the given parameters.
    ///
    /// # Panics
    ///
    /// Panics if `num_funcs < 2`, `call_levels == 0`, or a range is empty.
    pub fn new(params: ProgramParams) -> Self {
        assert!(params.num_funcs >= 2, "need a dispatcher and one callee");
        assert!(params.call_levels >= 1, "need at least one call level");
        assert!(
            params.blocks_per_func.0 >= 1 && params.blocks_per_func.0 <= params.blocks_per_func.1,
            "blocks_per_func range must be non-empty"
        );
        assert!(
            params.instrs_per_block.0 >= 1
                && params.instrs_per_block.0 <= params.instrs_per_block.1,
            "instrs_per_block range must be non-empty"
        );
        ProgramBuilder { params }
    }

    /// Generates the program.
    pub fn build(&self, name: &str) -> Program {
        let p = &self.params;
        let mut rng = SmallRng::seed_from_u64(p.seed);

        // Pass A: sizes and layout.
        let mut funcs = Vec::with_capacity(p.num_funcs);
        let mut cursor = 0usize;
        for f in 0..p.num_funcs {
            let level = if f == 0 {
                0
            } else {
                // Spread functions over levels 1..=call_levels; guarantee
                // level 1 has at least `dispatcher_fanout` members by
                // assigning the first functions to level 1.
                if f <= p.dispatcher_fanout.max(1) {
                    1
                } else {
                    rng.gen_range(1..=p.call_levels)
                }
            };
            let nblocks = if f == 0 {
                DISPATCHER_BLOCKS
            } else {
                rng.gen_range(p.blocks_per_func.0..=p.blocks_per_func.1)
            };
            let mut block_starts = Vec::with_capacity(nblocks);
            for _ in 0..nblocks {
                block_starts.push(cursor);
                let sz = rng.gen_range(p.instrs_per_block.0..=p.instrs_per_block.1);
                cursor += sz;
            }
            funcs.push(FuncPlan {
                level,
                block_starts,
                end: cursor,
            });
        }
        let total = cursor;
        let base = Addr::new(CODE_BASE);
        let addr_of = |idx: usize| base + idx as u64 * fdip_types::INSTR_BYTES;

        // Callee pools by level.
        let max_level = p.call_levels;
        let mut by_level: Vec<Vec<usize>> = vec![Vec::new(); max_level + 1];
        for (i, f) in funcs.iter().enumerate() {
            by_level[f.level].push(i);
        }
        // Decouple the dispatcher's visit order from code layout: real
        // call graphs do not walk functions in address order, and a
        // layout-ordered rotation would degenerate the temporal miss
        // pattern into a sequential one.
        by_level[1].shuffle(&mut rng);

        // Pass B: fill instructions and behaviours.
        let mut instrs = vec![StaticInstr::NOP; total];
        let mut behaviors: Vec<Option<BranchBehavior>> = vec![None; total];

        for (fi, func) in funcs.iter().enumerate() {
            let nblocks = func.block_starts.len();
            for (bi, &bstart) in func.block_starts.iter().enumerate() {
                let bend = if bi + 1 < nblocks {
                    func.block_starts[bi + 1]
                } else {
                    func.end
                };
                // Body: everything except the final (terminator) slot.
                for instr in &mut instrs[bstart..bend.saturating_sub(1)] {
                    *instr = StaticInstr::op(self.sample_op_class(&mut rng));
                }
                let term = bend - 1;
                let is_last_block = bi + 1 == nblocks;
                let (instr, behavior) = if is_last_block {
                    if fi == 0 {
                        // Dispatcher loops forever.
                        (
                            StaticInstr::branch(BranchKind::DirectJump, addr_of(func.start())),
                            None,
                        )
                    } else {
                        (StaticInstr::branch(BranchKind::Return, Addr::NULL), None)
                    }
                } else if fi == 0 {
                    // Dispatcher blocks call level-1 functions, rotating
                    // over the whole fanout via round-robin indirect calls.
                    self.dispatcher_call(&mut rng, bi, &funcs, &by_level, addr_of)
                } else {
                    self.block_terminator(&mut rng, func, bi, fi, &funcs, &by_level, addr_of)
                };
                instrs[term] = instr;
                behaviors[term] = behavior;
            }
        }

        let entry = addr_of(funcs[0].start());
        Program::new(name, CodeImage::new(base, instrs), behaviors, entry)
    }

    fn sample_op_class(&self, rng: &mut SmallRng) -> OpClass {
        let p = &self.params;
        if rng.gen_bool(p.mem_fraction) {
            if rng.gen_bool(0.65) {
                OpClass::Load
            } else {
                OpClass::Store
            }
        } else if rng.gen_bool(0.08) {
            OpClass::Mul
        } else if rng.gen_bool(0.05) {
            OpClass::Fp
        } else {
            OpClass::Alu
        }
    }

    fn dispatcher_call(
        &self,
        _rng: &mut SmallRng,
        site: usize,
        funcs: &[FuncPlan],
        by_level: &[Vec<usize>],
        addr_of: impl Fn(usize) -> Addr,
    ) -> (StaticInstr, Option<BranchBehavior>) {
        let pool = &by_level[1];
        let fanout = self.params.dispatcher_fanout.clamp(1, pool.len());
        // Each dispatcher call site starts its rotation at a different
        // phase, so one pass through the dispatcher touches a spread of
        // handlers and the full working set revisits quickly — the
        // recurring, temporally-correlated miss stream of a request
        // loop.
        let phase = site * fanout / DISPATCHER_BLOCKS;
        let targets: Vec<Addr> = (0..fanout)
            .map(|i| addr_of(funcs[pool[(i + phase) % fanout]].start()))
            .collect();
        if targets.len() == 1 {
            return (
                StaticInstr::branch(BranchKind::DirectCall, targets[0]),
                None,
            );
        }
        (
            StaticInstr::branch(BranchKind::IndirectCall, Addr::NULL),
            // The dispatcher rotates through its handlers like a server
            // working a request loop: this gives the miss stream the
            // temporal correlation real frontend traces have (which
            // temporal prefetchers such as EIP/MMA/D-JOLT exploit).
            Some(BranchBehavior::Indirect {
                targets,
                select: IndirectSelect::RoundRobin,
            }),
        )
    }

    #[allow(clippy::too_many_arguments)]
    fn block_terminator(
        &self,
        rng: &mut SmallRng,
        func: &FuncPlan,
        bi: usize,
        fi: usize,
        funcs: &[FuncPlan],
        by_level: &[Vec<usize>],
        addr_of: impl Fn(usize) -> Addr + Copy,
    ) -> (StaticInstr, Option<BranchBehavior>) {
        let p = &self.params;
        let later: Vec<Addr> = func.block_starts[bi + 1..]
            .iter()
            .map(|&s| addr_of(s))
            .collect();
        let earlier: Vec<Addr> = func.block_starts[..=bi]
            .iter()
            .map(|&s| addr_of(s))
            .collect();
        let roll: f64 = rng.gen();
        let cond_cut = p.cond_fraction;
        let call_cut = cond_cut + p.call_fraction;
        let jump_cut = call_cut + p.jump_fraction;
        let ind_cut = jump_cut + p.indirect_jump_fraction;

        if roll < cond_cut {
            self.conditional(rng, &later, &earlier)
        } else if roll < call_cut {
            self.call_terminator(rng, fi, funcs, by_level, addr_of)
        } else if roll < jump_cut && !later.is_empty() {
            let t = later[rng.gen_range(0..later.len())];
            (StaticInstr::branch(BranchKind::DirectJump, t), None)
        } else if roll < ind_cut && later.len() >= 2 {
            let n = rng.gen_range(2..=later.len().min(8));
            let targets: Vec<Addr> = (0..n)
                .map(|_| later[rng.gen_range(0..later.len())])
                .collect();
            let select = if rng.gen_bool(0.5) {
                IndirectSelect::RoundRobin
            } else {
                IndirectSelect::Sticky { switch_prob: 0.1 }
            };
            (
                StaticInstr::branch(BranchKind::IndirectJump, Addr::NULL),
                Some(BranchBehavior::Indirect { targets, select }),
            )
        } else {
            // Plain fallthrough into the next block.
            (StaticInstr::op(self.sample_op_class(rng)), None)
        }
    }

    fn call_terminator(
        &self,
        rng: &mut SmallRng,
        fi: usize,
        funcs: &[FuncPlan],
        by_level: &[Vec<usize>],
        addr_of: impl Fn(usize) -> Addr,
    ) -> (StaticInstr, Option<BranchBehavior>) {
        let level = funcs[fi].level;
        // Collect callable functions strictly deeper in the call graph.
        let deeper: Vec<usize> = by_level[level + 1..].iter().flatten().copied().collect();
        if deeper.is_empty() {
            // Leaf-level function: nothing to call, degrade to a plain op.
            return (StaticInstr::op(self.sample_op_class(rng)), None);
        }
        let indirect = rng.gen_bool(self.params.indirect_call_fraction) && deeper.len() >= 2;
        if indirect {
            let n = rng.gen_range(2..=deeper.len().min(6));
            let targets: Vec<Addr> = (0..n)
                .map(|_| addr_of(funcs[deeper[rng.gen_range(0..deeper.len())]].start()))
                .collect();
            (
                StaticInstr::branch(BranchKind::IndirectCall, Addr::NULL),
                Some(BranchBehavior::Indirect {
                    targets,
                    select: IndirectSelect::Sticky { switch_prob: 0.08 },
                }),
            )
        } else {
            let callee = deeper[rng.gen_range(0..deeper.len())];
            (
                StaticInstr::branch(BranchKind::DirectCall, addr_of(funcs[callee].start())),
                None,
            )
        }
    }

    fn conditional(
        &self,
        rng: &mut SmallRng,
        later: &[Addr],
        earlier: &[Addr],
    ) -> (StaticInstr, Option<BranchBehavior>) {
        let p = &self.params;
        let make_loop = rng.gen_bool(p.loop_fraction) && !earlier.is_empty();
        if make_loop {
            let t = earlier[rng.gen_range(0..earlier.len())];
            let trip = rng.gen_range(p.loop_trip.0.max(1)..=p.loop_trip.1.max(p.loop_trip.0 + 1));
            return (
                StaticInstr::branch(BranchKind::CondDirect, t),
                Some(BranchBehavior::Loop { trip }),
            );
        }
        if later.is_empty() {
            // Nothing ahead to branch to: degrade to a plain op.
            return (StaticInstr::op(OpClass::Alu), None);
        }
        let t = later[rng.gen_range(0..later.len())];
        let behavior = if rng.gen_bool(p.strongly_biased_fraction) {
            let p_taken = if rng.gen_bool(0.5) {
                rng.gen_range(0.0..0.012)
            } else {
                rng.gen_range(0.988..1.0)
            };
            BranchBehavior::Bias { p_taken }
        } else if rng.gen_bool(p.pattern_fraction) {
            let len = rng.gen_range(2..=12u8);
            let bits: u64 = rng.gen::<u64>() & ((1u64 << len) - 1);
            BranchBehavior::Pattern { bits, len }
        } else {
            BranchBehavior::Bias {
                p_taken: rng.gen_range(0.25..0.75),
            }
        };
        (
            StaticInstr::branch(BranchKind::CondDirect, t),
            Some(behavior),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fdip_types::InstrKind;

    fn small_params(seed: u64) -> ProgramParams {
        ProgramParams {
            seed,
            num_funcs: 24,
            ..ProgramParams::default()
        }
    }

    #[test]
    fn build_is_deterministic() {
        let a = ProgramBuilder::new(small_params(7)).build("a");
        let b = ProgramBuilder::new(small_params(7)).build("b");
        assert_eq!(a.image().len(), b.image().len());
        for i in 0..a.image().len() {
            let addr = a.image().addr_of(i);
            assert_eq!(a.image().instr_at(addr), b.image().instr_at(addr));
        }
    }

    #[test]
    fn different_seeds_differ() {
        let a = ProgramBuilder::new(small_params(7)).build("a");
        let b = ProgramBuilder::new(small_params(8)).build("b");
        let same = a.image().len() == b.image().len()
            && (0..a.image().len()).all(|i| {
                a.image().instr_at(a.image().addr_of(i)) == b.image().instr_at(b.image().addr_of(i))
            });
        assert!(!same, "seeds 7 and 8 produced identical programs");
    }

    #[test]
    fn every_direct_branch_targets_mapped_code() {
        let p = ProgramBuilder::new(small_params(3)).build("t");
        let img = p.image();
        for i in 0..img.len() {
            let a = img.addr_of(i);
            if let InstrKind::Branch { kind, target } = img.instr_at(a).kind {
                if kind.is_direct() {
                    assert!(
                        img.contains(target),
                        "branch at {a} targets unmapped {target}"
                    );
                }
            }
        }
    }

    #[test]
    fn every_indirect_branch_has_behavior_with_mapped_targets() {
        let p = ProgramBuilder::new(small_params(5)).build("t");
        let img = p.image();
        for i in 0..img.len() {
            let a = img.addr_of(i);
            if let InstrKind::Branch { kind, .. } = img.instr_at(a).kind {
                if kind.is_indirect() {
                    let b = p.behavior_at(a).expect("indirect branch missing behaviour");
                    match b {
                        BranchBehavior::Indirect { targets, .. } => {
                            assert!(!targets.is_empty());
                            for t in targets {
                                assert!(img.contains(*t));
                            }
                        }
                        other => panic!("indirect branch with behaviour {other:?}"),
                    }
                }
            }
        }
    }

    #[test]
    fn every_conditional_has_direction_behavior() {
        let p = ProgramBuilder::new(small_params(9)).build("t");
        let img = p.image();
        for i in 0..img.len() {
            let a = img.addr_of(i);
            if img.instr_at(a).kind.branch_kind() == Some(BranchKind::CondDirect) {
                let b = p.behavior_at(a).expect("conditional missing behaviour");
                assert!(!b.is_indirect());
            }
        }
    }

    #[test]
    fn entry_is_a_dispatcher_that_loops() {
        let p = ProgramBuilder::new(small_params(11)).build("t");
        // The dispatcher's last block ends with a direct jump back to the
        // entry, so the program never "ends".
        let img = p.image();
        let mut found_loopback = false;
        for i in 0..img.len() {
            let a = img.addr_of(i);
            if let InstrKind::Branch {
                kind: BranchKind::DirectJump,
                target,
            } = img.instr_at(a).kind
            {
                if target == p.entry() {
                    found_loopback = true;
                }
            }
        }
        assert!(found_loopback);
    }

    #[test]
    fn footprint_scales_with_num_funcs() {
        let small = ProgramBuilder::new(small_params(1)).build("s");
        let big = ProgramBuilder::new(ProgramParams {
            seed: 1,
            num_funcs: 200,
            ..ProgramParams::default()
        })
        .build("b");
        assert!(big.image().footprint_bytes() > 4 * small.image().footprint_bytes());
    }

    #[test]
    #[should_panic(expected = "need a dispatcher")]
    fn rejects_too_few_funcs() {
        let _ = ProgramBuilder::new(ProgramParams {
            num_funcs: 1,
            ..ProgramParams::default()
        });
    }
}
