//! The workload suite: named synthetic workloads in the three families the
//! paper evaluates (server, client, SPEC-like).
//!
//! Family parameters are tuned so the suite reproduces the paper's
//! selection criterion — every workload should show a meaningful IPC
//! uplift with a perfect I-cache over the 32KB baseline — at the scale
//! documented in `DESIGN.md` §2:
//!
//! * **Server**: multi-hundred-KB instruction footprints, thousands of
//!   static branches (stressing 1K–8K-entry BTBs), deep call graphs, a
//!   dispatcher touching the whole footprint.
//! * **Client**: medium footprints, moderate call depth.
//! * **Spec**: loop-dominated, small-to-medium footprints.

use crate::builder::{ProgramBuilder, ProgramParams};
use crate::image::Program;
use std::fmt;

/// Workload family, mirroring the IPC-1 trace categories.
#[derive(Copy, Clone, PartialEq, Eq, Hash, Debug)]
pub enum WorkloadFamily {
    /// Data-center style: huge instruction footprint, flat profile.
    Server,
    /// Client/interactive style: medium footprint.
    Client,
    /// SPEC-CPU style: loop-dominated, hotter code.
    Spec,
}

impl fmt::Display for WorkloadFamily {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            WorkloadFamily::Server => "server",
            WorkloadFamily::Client => "client",
            WorkloadFamily::Spec => "spec",
        };
        f.write_str(s)
    }
}

impl WorkloadFamily {
    /// Default generator parameters for this family.
    pub fn default_params(self, seed: u64) -> ProgramParams {
        match self {
            WorkloadFamily::Server => ProgramParams {
                seed,
                num_funcs: 4200,
                blocks_per_func: (4, 12),
                instrs_per_block: (4, 10),
                call_levels: 5,
                cond_fraction: 0.45,
                call_fraction: 0.22,
                jump_fraction: 0.08,
                indirect_jump_fraction: 0.05,
                indirect_call_fraction: 0.20,
                strongly_biased_fraction: 0.78,
                loop_fraction: 0.08,
                pattern_fraction: 0.12,
                loop_trip: (3, 16),
                mem_fraction: 0.35,
                dispatcher_fanout: 384,
            },
            WorkloadFamily::Client => ProgramParams {
                seed,
                num_funcs: 800,
                blocks_per_func: (4, 10),
                instrs_per_block: (4, 9),
                call_levels: 4,
                cond_fraction: 0.48,
                call_fraction: 0.18,
                jump_fraction: 0.07,
                indirect_jump_fraction: 0.04,
                indirect_call_fraction: 0.12,
                strongly_biased_fraction: 0.72,
                loop_fraction: 0.14,
                pattern_fraction: 0.15,
                loop_trip: (3, 24),
                mem_fraction: 0.35,
                dispatcher_fanout: 128,
            },
            WorkloadFamily::Spec => ProgramParams {
                seed,
                num_funcs: 680,
                blocks_per_func: (3, 9),
                instrs_per_block: (4, 9),
                call_levels: 3,
                cond_fraction: 0.5,
                call_fraction: 0.18,
                jump_fraction: 0.06,
                indirect_jump_fraction: 0.03,
                indirect_call_fraction: 0.08,
                strongly_biased_fraction: 0.65,
                loop_fraction: 0.28,
                pattern_fraction: 0.18,
                loop_trip: (4, 48),
                mem_fraction: 0.4,
                dispatcher_fanout: 288,
            },
        }
    }
}

/// A named workload: a family, a seed, and generator parameters.
#[derive(Clone, Debug)]
pub struct Workload {
    /// Short display name, e.g. `server_a`.
    pub name: String,
    /// Family the parameters were derived from.
    pub family: WorkloadFamily,
    /// Generator parameters (usually the family defaults with a seed).
    pub params: ProgramParams,
}

impl Workload {
    /// Creates a workload with the family's default parameters.
    pub fn family_default(name: impl Into<String>, family: WorkloadFamily, seed: u64) -> Self {
        Workload {
            name: name.into(),
            family,
            params: family.default_params(seed),
        }
    }

    /// Generates the program for this workload.
    pub fn build(&self) -> Program {
        ProgramBuilder::new(self.params.clone()).build(&self.name)
    }
}

/// The default evaluation suite: 10 workloads across the three families,
/// analogous to the paper's IPC-1 server/client/SPEC mix.
pub fn suite() -> Vec<Workload> {
    use WorkloadFamily::*;
    // server_c/_d are medium-footprint servers, mirroring the footprint
    // diversity of the IPC-1 server traces.
    let medium_server = |name: &str, seed| {
        let mut w = Workload::family_default(name, Server, seed);
        w.params.num_funcs = 2200;
        w.params.dispatcher_fanout = 208;
        w
    };
    // Server-heavy mix, mirroring the IPC-1 composition the paper
    // evaluates on (server traces dominate).
    vec![
        Workload::family_default("server_a", Server, 101),
        Workload::family_default("server_b", Server, 102),
        medium_server("server_c", 103),
        medium_server("server_d", 104),
        Workload::family_default("server_e", Server, 105),
        Workload::family_default("server_f", Server, 106),
        Workload::family_default("client_a", Client, 201),
        Workload::family_default("client_b", Client, 202),
        Workload::family_default("spec_a", Spec, 301),
        Workload::family_default("spec_b", Spec, 302),
    ]
}

/// A reduced three-workload suite (one per family) for quick runs, CI, and
/// the Criterion benches.
pub fn quick_suite() -> Vec<Workload> {
    use WorkloadFamily::*;
    vec![
        Workload::family_default("server_a", Server, 101),
        Workload::family_default("client_a", Client, 201),
        Workload::family_default("spec_a", Spec, 301),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn suite_has_ten_unique_names() {
        let s = suite();
        assert_eq!(s.len(), 10);
        let names: HashSet<&str> = s.iter().map(|w| w.name.as_str()).collect();
        assert_eq!(names.len(), 10);
    }

    #[test]
    fn families_order_by_footprint() {
        let server = Workload::family_default("s", WorkloadFamily::Server, 1).build();
        let client = Workload::family_default("c", WorkloadFamily::Client, 1).build();
        let spec = Workload::family_default("p", WorkloadFamily::Spec, 1).build();
        assert!(server.image().footprint_bytes() > client.image().footprint_bytes());
        assert!(client.image().footprint_bytes() > spec.image().footprint_bytes());
    }

    #[test]
    fn server_footprint_exceeds_l1i() {
        let server = Workload::family_default("s", WorkloadFamily::Server, 1).build();
        // 32KB L1I must be far too small for a server workload.
        assert!(
            server.image().footprint_bytes() > 8 * 32 * 1024,
            "server footprint only {} bytes",
            server.image().footprint_bytes()
        );
    }

    #[test]
    fn server_branch_count_stresses_small_btbs() {
        let server = Workload::family_default("s", WorkloadFamily::Server, 1).build();
        let branches = server.static_branch_count();
        // Enough static branches to overflow a 1K–4K-entry BTB.
        assert!(branches > 4_000, "only {branches} static branches");
    }

    #[test]
    fn quick_suite_is_one_per_family() {
        let s = quick_suite();
        assert_eq!(s.len(), 3);
        let fams: HashSet<WorkloadFamily> = s.iter().map(|w| w.family).collect();
        assert_eq!(fams.len(), 3);
    }

    #[test]
    fn family_display_names() {
        assert_eq!(WorkloadFamily::Server.to_string(), "server");
        assert_eq!(WorkloadFamily::Client.to_string(), "client");
        assert_eq!(WorkloadFamily::Spec.to_string(), "spec");
    }

    #[test]
    fn workloads_build() {
        for w in quick_suite() {
            let p = w.build();
            assert!(p.image().len() > 500, "{} too small", w.name);
        }
    }
}
