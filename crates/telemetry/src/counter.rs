//! A saturating event counter.

use crate::json::Json;
use crate::ToJson;

/// A named-by-context event counter that saturates instead of wrapping.
///
/// The simulator's own `SimStats` keeps raw `u64` fields for speed; this
/// type exists for ad-hoc instrumentation where a self-describing value
/// (with delta support for warmup subtraction) is more convenient than a
/// bare integer.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, PartialOrd, Ord)]
pub struct Counter(u64);

impl Counter {
    /// Creates a zeroed counter.
    pub fn new() -> Counter {
        Counter(0)
    }

    /// Adds one event.
    pub fn inc(&mut self) {
        self.add(1);
    }

    /// Adds `n` events, saturating at `u64::MAX`.
    pub fn add(&mut self, n: u64) {
        self.0 = self.0.saturating_add(n);
    }

    /// Current count.
    pub fn get(&self) -> u64 {
        self.0
    }

    /// Resets to zero.
    pub fn clear(&mut self) {
        self.0 = 0;
    }

    /// Events accumulated since `earlier` (saturating at zero).
    ///
    /// Used to subtract a warmup snapshot from an end-of-run value.
    #[must_use]
    pub fn since(&self, earlier: Counter) -> Counter {
        Counter(self.0.saturating_sub(earlier.0))
    }
}

impl From<u64> for Counter {
    fn from(n: u64) -> Counter {
        Counter(n)
    }
}

impl From<Counter> for u64 {
    fn from(c: Counter) -> u64 {
        c.0
    }
}

impl ToJson for Counter {
    fn to_json(&self) -> Json {
        Json::from(self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_and_saturates() {
        let mut c = Counter::new();
        c.inc();
        c.add(41);
        assert_eq!(c.get(), 42);
        c.add(u64::MAX);
        assert_eq!(c.get(), u64::MAX);
    }

    #[test]
    fn since_subtracts_a_snapshot() {
        let mut c = Counter::new();
        c.add(10);
        let snap = c;
        c.add(5);
        assert_eq!(c.since(snap).get(), 5);
        assert_eq!(snap.since(c).get(), 0);
    }
}
