//! Log2-bucketed histograms for per-cycle distributions.
//!
//! The simulator records values every cycle (FTQ occupancy, queue fills)
//! or per event (prefetch lead times), so recording must be O(1) with no
//! allocation on the hot path once the bucket vector has grown. Power-of-
//! two buckets give useful resolution over the 0..~10⁶ range these
//! quantities span while keeping the serialized form tiny.

use crate::json::Json;
use crate::ToJson;

/// One non-empty histogram bucket, for iteration and reporting.
///
/// The bucket covers values `lo ..= hi` inclusive on both ends.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Bucket {
    /// Smallest value that lands in this bucket.
    pub lo: u64,
    /// Largest value that lands in this bucket.
    pub hi: u64,
    /// Number of recorded values in `lo ..= hi`.
    pub count: u64,
}

/// A log2-bucketed histogram of `u64` samples.
///
/// Bucket 0 holds exactly the value `0`; bucket `i` (for `i >= 1`) holds
/// values in `2^(i-1) ..= 2^i - 1`. Exact `count`/`sum`/`min`/`max` are
/// tracked alongside the buckets, so the mean is exact even though
/// percentiles are bucket-resolution estimates.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Histogram {
    buckets: Vec<u64>,
    count: u64,
    sum: u64,
    min: u64,
    max: u64,
}

impl Histogram {
    /// Creates an empty histogram.
    pub fn new() -> Histogram {
        Histogram::default()
    }

    /// Index of the bucket that `value` falls in.
    fn bucket_index(value: u64) -> usize {
        if value == 0 {
            0
        } else {
            64 - value.leading_zeros() as usize
        }
    }

    /// Inclusive value range covered by bucket `index`.
    fn bucket_range(index: usize) -> (u64, u64) {
        if index == 0 {
            (0, 0)
        } else if index >= 64 {
            (1u64 << 63, u64::MAX)
        } else {
            (1u64 << (index - 1), (1u64 << index) - 1)
        }
    }

    /// Records one sample.
    pub fn record(&mut self, value: u64) {
        self.record_n(value, 1);
    }

    /// Records `n` identical samples.
    pub fn record_n(&mut self, value: u64, n: u64) {
        if n == 0 {
            return;
        }
        let idx = Self::bucket_index(value);
        if idx >= self.buckets.len() {
            self.buckets.resize(idx + 1, 0);
        }
        self.buckets[idx] += n;
        if self.count == 0 {
            self.min = value;
            self.max = value;
        } else {
            self.min = self.min.min(value);
            self.max = self.max.max(value);
        }
        self.count += n;
        self.sum = self.sum.saturating_add(value.saturating_mul(n));
    }

    /// Folds another histogram's samples into this one.
    pub fn merge(&mut self, other: &Histogram) {
        if other.count == 0 {
            return;
        }
        if self.buckets.len() < other.buckets.len() {
            self.buckets.resize(other.buckets.len(), 0);
        }
        for (dst, src) in self.buckets.iter_mut().zip(&other.buckets) {
            *dst += src;
        }
        if self.count == 0 {
            self.min = other.min;
            self.max = other.max;
        } else {
            self.min = self.min.min(other.min);
            self.max = self.max.max(other.max);
        }
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
    }

    /// Discards all samples.
    pub fn clear(&mut self) {
        self.buckets.clear();
        self.count = 0;
        self.sum = 0;
        self.min = 0;
        self.max = 0;
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all recorded samples (saturating).
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Smallest recorded sample, or `None` if empty.
    pub fn min(&self) -> Option<u64> {
        (self.count > 0).then_some(self.min)
    }

    /// Largest recorded sample, or `None` if empty.
    pub fn max(&self) -> Option<u64> {
        (self.count > 0).then_some(self.max)
    }

    /// Exact arithmetic mean, or 0.0 if empty.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Estimated p-th percentile (`0.0 ..= 1.0`), at bucket resolution.
    ///
    /// Returns the upper bound of the bucket containing the p-th sample
    /// (clamped to the observed max), or `None` if the histogram is empty.
    pub fn percentile(&self, p: f64) -> Option<u64> {
        if self.count == 0 {
            return None;
        }
        let p = p.clamp(0.0, 1.0);
        // Rank of the target sample, 1-based.
        let target = ((p * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (idx, &n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= target {
                let (_, hi) = Self::bucket_range(idx);
                return Some(hi.min(self.max));
            }
        }
        Some(self.max)
    }

    /// Reconstructs a histogram from its [`ToJson`] form.
    ///
    /// The inverse of [`Histogram::to_json`]: bucket counts are restored
    /// from the `buckets` array (each entry's `lo` selects its log2
    /// bucket) and the exact `count`/`sum`/`min`/`max` come from the
    /// top-level fields, so `from_json(h.to_json()) == h` for any
    /// histogram. Derived fields (`mean`, percentiles) are recomputed,
    /// not read. Returns `None` if a required field is missing or the
    /// bucket counts disagree with the top-level `count`.
    pub fn from_json(v: &Json) -> Option<Histogram> {
        let mut h = Histogram::new();
        for b in v.get("buckets")?.as_arr()? {
            let lo = b.get("lo")?.as_u64()?;
            let n = b.get("count")?.as_u64()?;
            let idx = Self::bucket_index(lo);
            if idx >= h.buckets.len() {
                h.buckets.resize(idx + 1, 0);
            }
            h.buckets[idx] += n;
            h.count += n;
        }
        if h.count != v.get("count")?.as_u64()? {
            return None;
        }
        h.sum = v.get("sum")?.as_u64()?;
        if h.count > 0 {
            h.min = v.get("min")?.as_u64()?;
            h.max = v.get("max")?.as_u64()?;
        }
        Some(h)
    }

    /// Iterates the non-empty buckets in ascending value order.
    pub fn buckets(&self) -> impl Iterator<Item = Bucket> + '_ {
        self.buckets
            .iter()
            .enumerate()
            .filter(|(_, &n)| n > 0)
            .map(|(idx, &n)| {
                let (lo, hi) = Self::bucket_range(idx);
                Bucket { lo, hi, count: n }
            })
    }
}

impl ToJson for Histogram {
    /// Serializes as `{count, sum, min, max, mean, p50, p90, p99, buckets}`
    /// where `buckets` is an array of `{lo, hi, count}` for non-empty
    /// buckets only. An empty histogram has `min`/`max`/percentiles `null`.
    fn to_json(&self) -> Json {
        let buckets: Vec<Json> = self
            .buckets()
            .map(|b| {
                Json::obj()
                    .with("lo", b.lo)
                    .with("hi", b.hi)
                    .with("count", b.count)
            })
            .collect();
        Json::obj()
            .with("count", self.count)
            .with("sum", self.sum)
            .with("min", self.min())
            .with("max", self.max())
            .with("mean", self.mean())
            .with("p50", self.percentile(0.50))
            .with("p90", self.percentile(0.90))
            .with("p99", self.percentile(0.99))
            .with("buckets", Json::Arr(buckets))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_boundaries_are_powers_of_two() {
        // Bucket 0 is exactly {0}; bucket i covers [2^(i-1), 2^i - 1].
        assert_eq!(Histogram::bucket_index(0), 0);
        assert_eq!(Histogram::bucket_index(1), 1);
        assert_eq!(Histogram::bucket_index(2), 2);
        assert_eq!(Histogram::bucket_index(3), 2);
        assert_eq!(Histogram::bucket_index(4), 3);
        assert_eq!(Histogram::bucket_index(7), 3);
        assert_eq!(Histogram::bucket_index(8), 4);
        assert_eq!(Histogram::bucket_index(u64::MAX), 64);
        for idx in 1..=63 {
            let (lo, hi) = Histogram::bucket_range(idx);
            assert_eq!(lo, 1u64 << (idx - 1));
            assert_eq!(hi, (1u64 << idx) - 1);
            assert_eq!(Histogram::bucket_index(lo), idx);
            assert_eq!(Histogram::bucket_index(hi), idx);
        }
        // Top bucket's range saturates rather than overflowing the shift.
        let (lo, hi) = Histogram::bucket_range(64);
        assert_eq!(lo, 1u64 << 63);
        assert!(hi >= lo);
    }

    #[test]
    fn exact_stats_tracked_alongside_buckets() {
        let mut h = Histogram::new();
        for v in [0u64, 3, 3, 17] {
            h.record(v);
        }
        assert_eq!(h.count(), 4);
        assert_eq!(h.sum(), 23);
        assert_eq!(h.min(), Some(0));
        assert_eq!(h.max(), Some(17));
        assert!((h.mean() - 5.75).abs() < 1e-12);
    }

    #[test]
    fn empty_histogram_is_well_behaved() {
        let h = Histogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.min(), None);
        assert_eq!(h.max(), None);
        assert_eq!(h.mean(), 0.0);
        assert_eq!(h.percentile(0.5), None);
        assert_eq!(h.buckets().count(), 0);
        let j = h.to_json();
        assert_eq!(j.get("min"), Some(&Json::Null));
        assert_eq!(j.get("count").and_then(Json::as_u64), Some(0));
    }

    #[test]
    fn percentiles_respect_bucket_resolution() {
        let mut h = Histogram::new();
        h.record_n(1, 90); // bucket 1: [1,1]
        h.record_n(100, 10); // bucket 7: [64,127]
        assert_eq!(h.percentile(0.0), Some(1));
        assert_eq!(h.percentile(0.5), Some(1));
        assert_eq!(h.percentile(0.9), Some(1));
        // p99 lands in the [64,127] bucket; clamped to observed max 100.
        assert_eq!(h.percentile(0.99), Some(100));
        assert_eq!(h.percentile(1.0), Some(100));
    }

    #[test]
    fn merge_matches_recording_directly() {
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        let mut all = Histogram::new();
        for v in [0u64, 1, 5, 9] {
            a.record(v);
            all.record(v);
        }
        for v in [2u64, 1024, 65535] {
            b.record(v);
            all.record(v);
        }
        a.merge(&b);
        assert_eq!(a, all);
        // Merging into an empty histogram adopts min/max.
        let mut empty = Histogram::new();
        empty.merge(&all);
        assert_eq!(empty, all);
    }

    #[test]
    fn record_n_zero_is_a_no_op() {
        let mut h = Histogram::new();
        h.record_n(42, 0);
        assert_eq!(h.count(), 0);
        assert_eq!(h.min(), None);
    }

    #[test]
    fn from_json_inverts_to_json_exactly() {
        let mut h = Histogram::new();
        for v in [0u64, 3, 3, 17, 300, 1 << 40] {
            h.record(v);
        }
        let parsed = Json::parse(&h.to_json().to_string()).unwrap();
        assert_eq!(Histogram::from_json(&parsed), Some(h.clone()));
        // Empty histograms round-trip too (min/max are null).
        let empty = Histogram::new();
        assert_eq!(Histogram::from_json(&empty.to_json()), Some(empty));
        // A count mismatch (corrupt document) is rejected, not guessed at.
        let bad = h.to_json().with("count", 999u64);
        assert_eq!(Histogram::from_json(&bad), None);
    }

    #[test]
    fn json_form_round_trips_through_parser() {
        let mut h = Histogram::new();
        for v in [0u64, 3, 3, 17, 300] {
            h.record(v);
        }
        let j = h.to_json();
        let round = Json::parse(&j.to_string()).unwrap();
        assert_eq!(round.get("count").and_then(Json::as_u64), Some(5));
        assert_eq!(round.get("sum").and_then(Json::as_u64), Some(323));
        let buckets = round.get("buckets").and_then(Json::as_arr).unwrap();
        // Non-empty buckets: {0}, [2,3], [16,31], [256,511].
        assert_eq!(buckets.len(), 4);
        assert_eq!(buckets[1].get("lo").and_then(Json::as_u64), Some(2));
        assert_eq!(buckets[1].get("hi").and_then(Json::as_u64), Some(3));
        assert_eq!(buckets[1].get("count").and_then(Json::as_u64), Some(2));
    }
}
