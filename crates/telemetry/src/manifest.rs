//! Run provenance for a results file.

use std::process::Command;
use std::time::{SystemTime, UNIX_EPOCH};

use crate::json::Json;
use crate::ToJson;

/// Provenance attached to every emitted `results.json`.
///
/// Records what produced the file (tool and suite), how long the runs were
/// (warmup and measured instruction counts), which source revision was
/// built, and when/how long the run took — enough to tell two results
/// files apart without re-running anything.
#[derive(Clone, Debug, PartialEq)]
pub struct RunManifest {
    /// Name of the binary or test that produced the results.
    pub tool: String,
    /// Workload suite identifier (e.g. `"quick"`, `"full"`).
    pub suite: String,
    /// Instructions retired per workload before measurement begins.
    pub warmup_instrs: u64,
    /// Instructions retired per workload in the measured region.
    pub measure_instrs: u64,
    /// Number of workloads in the suite.
    pub workload_count: usize,
    /// `git describe --always --dirty` output, or `"unknown"`.
    pub git_revision: String,
    /// Unix timestamp (seconds) when the manifest was created.
    pub generated_unix: u64,
    /// Wall-clock seconds the run took (filled in at emission time).
    pub wall_seconds: f64,
    /// Job-pool telemetry for the run, already serialized (set by the
    /// harness from `fdip_exec::PoolStats`; this crate stays ignorant of
    /// the executor). Omitted from the JSON when `None`.
    pub pool: Option<Json>,
}

impl RunManifest {
    /// Creates a manifest stamped with the current time and git revision.
    ///
    /// `wall_seconds` starts at zero; callers set it just before emission.
    pub fn new(
        tool: &str,
        suite: &str,
        warmup_instrs: u64,
        measure_instrs: u64,
        workload_count: usize,
    ) -> RunManifest {
        RunManifest {
            tool: tool.to_string(),
            suite: suite.to_string(),
            warmup_instrs,
            measure_instrs,
            workload_count,
            git_revision: git_describe(),
            generated_unix: unix_now(),
            wall_seconds: 0.0,
            pool: None,
        }
    }
}

impl ToJson for RunManifest {
    fn to_json(&self) -> Json {
        let mut j = Json::obj()
            .with("tool", self.tool.as_str())
            .with("suite", self.suite.as_str())
            .with("warmup_instrs", self.warmup_instrs)
            .with("measure_instrs", self.measure_instrs)
            .with("workload_count", self.workload_count)
            .with("git_revision", self.git_revision.as_str())
            .with("generated_unix", self.generated_unix)
            .with("wall_seconds", self.wall_seconds);
        if let Some(pool) = &self.pool {
            j.set("pool", pool.clone());
        }
        j
    }
}

/// Best-effort `git describe --always --dirty`; `"unknown"` outside a repo.
fn git_describe() -> String {
    Command::new("git")
        .args(["describe", "--always", "--dirty"])
        .output()
        .ok()
        .filter(|out| out.status.success())
        .and_then(|out| String::from_utf8(out.stdout).ok())
        .map(|s| s.trim().to_string())
        .filter(|s| !s.is_empty())
        .unwrap_or_else(|| "unknown".to_string())
}

fn unix_now() -> u64 {
    SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .map(|d| d.as_secs())
        .unwrap_or(0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn manifest_serializes_every_field() {
        let mut m = RunManifest::new("fdip-run", "quick", 50_000, 200_000, 6);
        m.wall_seconds = 1.5;
        let j = m.to_json();
        for key in [
            "tool",
            "suite",
            "warmup_instrs",
            "measure_instrs",
            "workload_count",
            "git_revision",
            "generated_unix",
            "wall_seconds",
        ] {
            assert!(j.get(key).is_some(), "missing {key}");
        }
        assert_eq!(j.get("suite").and_then(Json::as_str), Some("quick"));
        assert_eq!(j.get("warmup_instrs").and_then(Json::as_u64), Some(50_000));
        let round = Json::parse(&j.to_string()).unwrap();
        assert_eq!(round.get("wall_seconds").and_then(Json::as_f64), Some(1.5));
    }

    #[test]
    fn pool_block_is_emitted_only_when_present() {
        let mut m = RunManifest::new("fdip-run", "quick", 1_000, 4_000, 3);
        assert!(m.to_json().get("pool").is_none());
        m.pool = Some(Json::obj().with("workers", 4u64));
        let j = m.to_json();
        assert_eq!(
            j.get("pool")
                .and_then(|p| p.get("workers"))
                .and_then(Json::as_u64),
            Some(4)
        );
    }
}
