//! A hand-rolled JSON value: writer and parser.
//!
//! The build environment is offline (no `serde`), and the harness needs
//! both directions — emission for `results.json`, parsing so tests can
//! round-trip what was emitted. Integers and floats are kept distinct
//! ([`Json::Int`] vs [`Json::Num`]) so `u64` counters survive without
//! passing through `f64`. Objects preserve insertion order, which keeps
//! emitted files diffable and lets tests walk the schema deterministically.

use std::fmt;

/// A JSON value.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// An integer (emitted without a decimal point).
    Int(i64),
    /// A floating-point number. Non-finite values serialize as `null`.
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object; insertion-ordered key/value pairs.
    Obj(Vec<(String, Json)>),
}

/// Error from [`Json::parse`], with a byte offset into the input.
#[derive(Clone, Debug, PartialEq)]
pub struct JsonError {
    /// What went wrong.
    pub message: String,
    /// Byte offset at which parsing failed.
    pub offset: usize,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "JSON error at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for JsonError {}

impl Json {
    /// Creates an empty object.
    pub fn obj() -> Json {
        Json::Obj(Vec::new())
    }

    /// Adds or replaces a field on an object (no-op on non-objects).
    pub fn set(&mut self, key: &str, value: impl Into<Json>) -> &mut Json {
        if let Json::Obj(fields) = self {
            let value = value.into();
            if let Some(slot) = fields.iter_mut().find(|(k, _)| k == key) {
                slot.1 = value;
            } else {
                fields.push((key.to_string(), value));
            }
        }
        self
    }

    /// Builder-style [`Json::set`].
    #[must_use]
    pub fn with(mut self, key: &str, value: impl Into<Json>) -> Json {
        self.set(key, value);
        self
    }

    /// Field lookup on objects.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as a bool.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The value as an i64 (integers only).
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Json::Int(i) => Some(*i),
            _ => None,
        }
    }

    /// The value as a u64 (non-negative integers only).
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Int(i) if *i >= 0 => Some(*i as u64),
            _ => None,
        }
    }

    /// The value as an f64 (accepts both number forms).
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(v) => Some(*v),
            Json::Int(i) => Some(*i as f64),
            _ => None,
        }
    }

    /// The value as a string slice.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as an array slice.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// The value as object fields.
    pub fn as_obj(&self) -> Option<&[(String, Json)]> {
        match self {
            Json::Obj(fields) => Some(fields),
            _ => None,
        }
    }

    /// Serializes compactly (no whitespace).
    #[allow(clippy::inherent_to_string)]
    pub fn to_string(&self) -> String {
        let mut out = String::with_capacity(256);
        self.write(&mut out, None, 0);
        out
    }

    /// Serializes with two-space indentation.
    pub fn to_string_pretty(&self) -> String {
        let mut out = String::with_capacity(1024);
        self.write(&mut out, Some(2), 0);
        out.push('\n');
        out
    }

    fn write(&self, out: &mut String, indent: Option<usize>, depth: usize) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(true) => out.push_str("true"),
            Json::Bool(false) => out.push_str("false"),
            Json::Int(i) => out.push_str(&i.to_string()),
            Json::Num(v) => {
                if v.is_finite() {
                    // `{}` on f64 is the shortest round-trip form; force a
                    // decimal point so the value parses back as Num.
                    let s = v.to_string();
                    out.push_str(&s);
                    if !s.contains(['.', 'e', 'E']) {
                        out.push_str(".0");
                    }
                } else {
                    out.push_str("null");
                }
            }
            Json::Str(s) => write_escaped(out, s),
            Json::Arr(items) => {
                write_seq(out, indent, depth, '[', ']', items.len(), |out, i, d| {
                    items[i].write(out, indent, d);
                });
            }
            Json::Obj(fields) => {
                write_seq(out, indent, depth, '{', '}', fields.len(), |out, i, d| {
                    let (k, v) = &fields[i];
                    write_escaped(out, k);
                    out.push(':');
                    if indent.is_some() {
                        out.push(' ');
                    }
                    v.write(out, indent, d);
                });
            }
        }
    }

    /// Parses a JSON document (must consume all non-whitespace input).
    ///
    /// # Errors
    ///
    /// Returns a [`JsonError`] with a byte offset on malformed input.
    pub fn parse(input: &str) -> Result<Json, JsonError> {
        let mut p = Parser {
            bytes: input.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(p.err("trailing data after document"));
        }
        Ok(v)
    }
}

fn write_seq(
    out: &mut String,
    indent: Option<usize>,
    depth: usize,
    open: char,
    close: char,
    len: usize,
    mut item: impl FnMut(&mut String, usize, usize),
) {
    out.push(open);
    if len == 0 {
        out.push(close);
        return;
    }
    for i in 0..len {
        if i > 0 {
            out.push(',');
        }
        if let Some(w) = indent {
            out.push('\n');
            for _ in 0..w * (depth + 1) {
                out.push(' ');
            }
        }
        item(out, i, depth + 1);
    }
    if let Some(w) = indent {
        out.push('\n');
        for _ in 0..w * depth {
            out.push(' ');
        }
    }
    out.push(close);
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{8}' => out.push_str("\\b"),
            '\u{c}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

impl From<bool> for Json {
    fn from(b: bool) -> Json {
        Json::Bool(b)
    }
}

impl From<i64> for Json {
    fn from(i: i64) -> Json {
        Json::Int(i)
    }
}

impl From<u64> for Json {
    /// Counters above `i64::MAX` (never reached in practice) saturate.
    fn from(u: u64) -> Json {
        Json::Int(i64::try_from(u).unwrap_or(i64::MAX))
    }
}

impl From<u32> for Json {
    fn from(u: u32) -> Json {
        Json::Int(i64::from(u))
    }
}

impl From<usize> for Json {
    fn from(u: usize) -> Json {
        Json::from(u as u64)
    }
}

impl From<f64> for Json {
    fn from(v: f64) -> Json {
        Json::Num(v)
    }
}

impl From<&str> for Json {
    fn from(s: &str) -> Json {
        Json::Str(s.to_string())
    }
}

impl From<String> for Json {
    fn from(s: String) -> Json {
        Json::Str(s)
    }
}

impl<T: Into<Json>> From<Vec<T>> for Json {
    fn from(items: Vec<T>) -> Json {
        Json::Arr(items.into_iter().map(Into::into).collect())
    }
}

impl<T: Into<Json>> From<Option<T>> for Json {
    fn from(v: Option<T>) -> Json {
        v.map_or(Json::Null, Into::into)
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn err(&self, message: &str) -> JsonError {
        JsonError {
            message: message.to_string(),
            offset: self.pos,
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", b as char)))
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, JsonError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.err(&format!("expected '{word}'")))
        }
    }

    fn value(&mut self) -> Result<Json, JsonError> {
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => self.string().map(Json::Str),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            Some(_) => Err(self.err("unexpected character")),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn array(&mut self) -> Result<Json, JsonError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn object(&mut self) -> Result<Json, JsonError> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(fields));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let Some(b) = self.peek() else {
                return Err(self.err("unterminated string"));
            };
            self.pos += 1;
            match b {
                b'"' => return Ok(out),
                b'\\' => {
                    let Some(esc) = self.peek() else {
                        return Err(self.err("unterminated escape"));
                    };
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hi = self.hex4()?;
                            let code = if (0xd800..0xdc00).contains(&hi) {
                                // Surrogate pair.
                                self.expect(b'\\')?;
                                self.expect(b'u')?;
                                let lo = self.hex4()?;
                                if !(0xdc00..0xe000).contains(&lo) {
                                    return Err(self.err("invalid low surrogate"));
                                }
                                0x10000 + ((hi - 0xd800) << 10) + (lo - 0xdc00)
                            } else {
                                hi
                            };
                            match char::from_u32(code) {
                                Some(c) => out.push(c),
                                None => return Err(self.err("invalid unicode escape")),
                            }
                        }
                        _ => return Err(self.err("invalid escape")),
                    }
                }
                _ => {
                    // Continue a UTF-8 sequence: step back and decode one
                    // char from a 4-byte window (a UTF-8 sequence is at
                    // most 4 bytes; validating the whole remaining input
                    // per character would be quadratic in document size).
                    let start = self.pos - 1;
                    let end = self.bytes.len().min(start + 4);
                    let window = &self.bytes[start..end];
                    let c = match std::str::from_utf8(window) {
                        Ok(s) => s.chars().next().expect("non-empty"),
                        // A later char in the window may be cut off by
                        // the window edge; the valid prefix still holds
                        // the char we want.
                        Err(e) if e.valid_up_to() > 0 => {
                            std::str::from_utf8(&window[..e.valid_up_to()])
                                .expect("validated prefix")
                                .chars()
                                .next()
                                .expect("non-empty")
                        }
                        Err(_) => return Err(self.err("invalid UTF-8")),
                    };
                    out.push(c);
                    self.pos = start + c.len_utf8();
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, JsonError> {
        let mut v = 0u32;
        for _ in 0..4 {
            let Some(b) = self.peek() else {
                return Err(self.err("truncated \\u escape"));
            };
            let d = match b {
                b'0'..=b'9' => u32::from(b - b'0'),
                b'a'..=b'f' => u32::from(b - b'a') + 10,
                b'A'..=b'F' => u32::from(b - b'A') + 10,
                _ => return Err(self.err("invalid hex digit")),
            };
            v = v * 16 + d;
            self.pos += 1;
        }
        Ok(v)
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while self.peek().is_some_and(|b| b.is_ascii_digit()) {
            self.pos += 1;
        }
        let mut is_float = false;
        if self.peek() == Some(b'.') {
            is_float = true;
            self.pos += 1;
            while self.peek().is_some_and(|b| b.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            is_float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while self.peek().is_some_and(|b| b.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text =
            std::str::from_utf8(&self.bytes[start..self.pos]).expect("number bytes are ASCII");
        if !is_float {
            if let Ok(i) = text.parse::<i64>() {
                return Ok(Json::Int(i));
            }
        }
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| self.err("malformed number"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_round_trip() {
        for (v, s) in [
            (Json::Null, "null"),
            (Json::Bool(true), "true"),
            (Json::Bool(false), "false"),
            (Json::Int(-42), "-42"),
            (Json::Str("hi".into()), "\"hi\""),
        ] {
            assert_eq!(v.to_string(), s);
            assert_eq!(Json::parse(s).unwrap(), v);
        }
    }

    #[test]
    fn floats_keep_a_decimal_point() {
        assert_eq!(Json::Num(2.0).to_string(), "2.0");
        assert_eq!(Json::parse("2.0").unwrap(), Json::Num(2.0));
        assert_eq!(Json::parse("2").unwrap(), Json::Int(2));
        assert_eq!(Json::Num(f64::NAN).to_string(), "null");
    }

    #[test]
    fn large_u64_counters_survive() {
        let v = Json::from(1u64 << 62);
        assert_eq!(v.as_u64(), Some(1u64 << 62));
        let round = Json::parse(&v.to_string()).unwrap();
        assert_eq!(round.as_u64(), Some(1u64 << 62));
    }

    #[test]
    fn string_escaping_round_trips() {
        let nasty = "quote \" backslash \\ newline \n tab \t ctrl \u{1} unicode ümlaut 🚀";
        let v = Json::Str(nasty.to_string());
        let s = v.to_string();
        assert_eq!(Json::parse(&s).unwrap(), v);
    }

    #[test]
    fn unicode_escape_and_surrogates_parse() {
        assert_eq!(
            Json::parse("\"\\u00fc\\ud83d\\ude80\"").unwrap(),
            Json::Str("ü🚀".into())
        );
    }

    #[test]
    fn multibyte_chars_at_input_edges_parse() {
        // A 4-byte char right before the closing quote exercises the
        // bounded decode window at the end of the document.
        for s in ["🚀", "aé", "🚀🚀", "x\u{10FFFF}"] {
            let doc = format!("\"{s}\"");
            assert_eq!(Json::parse(&doc).unwrap(), Json::Str(s.into()), "{s}");
        }
    }

    #[test]
    fn nested_structures_round_trip() {
        let v = Json::obj()
            .with(
                "a",
                Json::Arr(vec![Json::Int(1), Json::Num(2.5), Json::Null]),
            )
            .with("b", Json::obj().with("inner", "x"));
        let compact = v.to_string();
        let pretty = v.to_string_pretty();
        assert_eq!(Json::parse(&compact).unwrap(), v);
        assert_eq!(Json::parse(&pretty).unwrap(), v);
    }

    #[test]
    fn object_order_is_preserved() {
        let v = Json::obj().with("z", 1u64).with("a", 2u64);
        assert_eq!(v.to_string(), "{\"z\":1,\"a\":2}");
    }

    #[test]
    fn set_replaces_existing_key() {
        let mut v = Json::obj().with("k", 1u64);
        v.set("k", 9u64);
        assert_eq!(v.get("k").and_then(Json::as_u64), Some(9));
        assert_eq!(v.as_obj().unwrap().len(), 1);
    }

    #[test]
    fn malformed_inputs_error_with_offset() {
        for bad in [
            "{",
            "[1,",
            "\"unterminated",
            "{\"k\" 1}",
            "tru",
            "1 2",
            "{\"k\":}",
        ] {
            let e = Json::parse(bad).expect_err(bad);
            assert!(e.offset <= bad.len());
        }
    }

    #[test]
    fn whitespace_tolerated() {
        let v = Json::parse(" { \"a\" : [ 1 , 2 ] , \"b\" : null } ").unwrap();
        assert_eq!(v.get("a").and_then(Json::as_arr).unwrap().len(), 2);
    }
}
