#![forbid(unsafe_code)]
#![warn(missing_docs)]
//! Telemetry substrate for the FDIP reproduction: the machine-readable
//! side of the paper's evaluation (§VI).
//!
//! The simulator's figures are *measurements* — IPC speedups, MPKI
//! breakdowns, starvation cycles/KI, prefetch timeliness — and the text
//! tables the harness prints cannot be consumed by regression tooling or
//! plotting. This crate provides the pieces that make a run a dataset:
//!
//! * [`Counter`] — a saturating event counter.
//! * [`Histogram`] — a log2-bucketed distribution (occupancy, lead times,
//!   queue fills), cheap enough to record per cycle.
//! * [`Json`] — a hand-rolled JSON value with writer **and** parser. The
//!   build environment is offline, so no `serde`; the schema emitted by
//!   the harness is documented in `docs/METRICS.md` and carries
//!   [`SCHEMA_VERSION`].
//! * [`RunManifest`] — provenance for a results file: tool, suite, run
//!   lengths, git revision, wall time.
//!
//! Everything here is dependency-free and deterministic; nothing in this
//! crate knows about the simulator (the `fdip-sim` and `fdip-harness`
//! crates implement [`ToJson`] for their own types).
//!
//! # Examples
//!
//! ```
//! use fdip_telemetry::{Histogram, Json, ToJson};
//!
//! let mut h = Histogram::new();
//! for occupancy in [0u64, 3, 3, 17] {
//!     h.record(occupancy);
//! }
//! assert_eq!(h.count(), 4);
//! let j = h.to_json();
//! let round = Json::parse(&j.to_string()).unwrap();
//! assert_eq!(round.get("count").and_then(Json::as_u64), Some(4));
//! ```

mod counter;
mod hist;
mod json;
mod manifest;

pub use counter::Counter;
pub use hist::{Bucket, Histogram};
pub use json::{Json, JsonError};
pub use manifest::RunManifest;

/// Version of the JSON results schema emitted by the harness.
///
/// Bump this whenever a field is renamed, removed, or its meaning changes;
/// purely additive fields do not require a bump. The schema itself is
/// documented in `docs/METRICS.md`.
pub const SCHEMA_VERSION: u64 = 1;

/// Conversion into a [`Json`] value.
///
/// Implemented by the simulator and harness for their stats/config types so
/// the whole result tree serializes through one mechanism.
pub trait ToJson {
    /// Renders `self` as a JSON value.
    fn to_json(&self) -> Json;
}

impl ToJson for Json {
    fn to_json(&self) -> Json {
        self.clone()
    }
}
