#![forbid(unsafe_code)]
#![warn(missing_docs)]
//! `fdip-exec` — the bounded work-stealing job pool behind every
//! simulation sweep.
//!
//! The paper's evaluation is a large sweep: every figure re-runs the
//! workload suite under many `CoreConfig` variants. Those runs are
//! embarrassingly parallel but must stay **bounded** (the pool never uses
//! more OS threads than requested) and **deterministic** (results land in
//! submission order, never completion order).
//!
//! The pool is dependency-free: a global injector deque feeds fixed
//! per-worker queues, and idle workers steal from their siblings. Jobs
//! are submitted in batches via [`Pool::run_batch`], which blocks until
//! every job of the batch has finished and returns the results in indexed
//! slots. A panicking job fails the submitting `run_batch` call (the
//! panic is re-raised there) instead of killing a worker or hanging the
//! pool.
//!
//! Sizing comes from the `FDIP_JOBS` environment variable (or the
//! `--jobs` flag of the harness binaries, via [`set_global_jobs`]),
//! defaulting to [`std::thread::available_parallelism`]. Use
//! [`global()`] for the shared process-wide pool or [`Pool::new`] for a
//! private one (tests).
//!
//! # Examples
//!
//! ```
//! use fdip_exec::Pool;
//!
//! let pool = Pool::new(4);
//! let squares = pool.run_batch((0u64..8).map(|i| move || i * i).collect::<Vec<_>>());
//! assert_eq!(squares, vec![0, 1, 4, 9, 16, 25, 36, 49]);
//! assert_eq!(pool.stats().jobs_completed, 8);
//! ```

use std::cell::Cell;
use std::collections::VecDeque;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, OnceLock};
use std::thread::JoinHandle;
use std::time::Instant;

use fdip_telemetry::{Histogram, Json, ToJson};

/// A type-erased unit of work.
type Job = Box<dyn FnOnce() + Send + 'static>;

/// Locks a mutex, recovering from poisoning (jobs are panic-isolated, so
/// a poisoned lock only means a peer thread died mid-assert in a test).
fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// Injector state behind the coordination mutex.
struct State {
    /// Global FIFO of jobs not yet claimed by any worker.
    injector: VecDeque<Job>,
    /// Jobs pushed but not yet taken, across injector *and* stripes.
    pending: usize,
    /// Set once by `Drop`; workers exit after draining their queues.
    shutdown: bool,
}

/// Aggregate telemetry counters (lock-free where recorded per job).
#[derive(Default)]
struct Counters {
    jobs_completed: AtomicU64,
    busy_ns: AtomicU64,
    busy_now: AtomicUsize,
    peak_busy: AtomicUsize,
    /// Jobs taken from a sibling's stripe rather than our own or the
    /// injector — the load-balancing pressure gauge.
    steals: AtomicU64,
}

/// Everything workers and submitters share.
struct Shared {
    state: Mutex<State>,
    work_cv: Condvar,
    /// Per-worker steal targets. A worker pops its own stripe LIFO (fresh
    /// sub-jobs stay cache-hot) and steals FIFO from siblings.
    stripes: Vec<Mutex<VecDeque<Job>>>,
    counters: Counters,
    /// Jobs executed by each worker (indexed like `stripes`); sums to
    /// `counters.jobs_completed` when the pool is quiescent.
    worker_jobs: Vec<AtomicU64>,
    /// Injector depth observed at each job submission.
    queue_depth: Mutex<Histogram>,
}

impl Shared {
    /// Non-blocking take: own stripe, then injector, then steal.
    fn try_take(&self, id: usize) -> Option<Job> {
        if let Some(job) = lock(&self.stripes[id]).pop_back() {
            lock(&self.state).pending -= 1;
            return Some(job);
        }
        {
            let mut st = lock(&self.state);
            if let Some(job) = st.injector.pop_front() {
                st.pending -= 1;
                return Some(job);
            }
        }
        let n = self.stripes.len();
        for k in 1..n {
            let victim = (id + k) % n;
            if let Some(job) = lock(&self.stripes[victim]).pop_front() {
                lock(&self.state).pending -= 1;
                // Advisory tally like busy_now (allowlisted Relaxed).
                self.counters.steals.fetch_add(1, Ordering::Relaxed);
                return Some(job);
            }
        }
        None
    }

    /// Blocking take; `None` means the pool is shutting down and drained.
    fn take(&self, id: usize) -> Option<Job> {
        loop {
            if let Some(job) = self.try_take(id) {
                return Some(job);
            }
            let mut st = lock(&self.state);
            loop {
                if st.pending > 0 {
                    break; // rescan the queues
                }
                if st.shutdown {
                    return None;
                }
                st = self
                    .work_cv
                    .wait(st)
                    .unwrap_or_else(std::sync::PoisonError::into_inner);
            }
        }
    }

    /// Runs one job, tracking how many workers are busy. Per-job time
    /// and completion counters are recorded by the batch wrapper itself
    /// (before it signals batch completion, so a submitter that returns
    /// from `run_batch` always observes its jobs in the stats).
    fn execute(&self, id: usize, job: Job) {
        // busy_now/peak_busy/worker_jobs are advisory occupancy gauges:
        // no reader derives a happens-before edge from them, so Relaxed
        // is sound (allowlisted in lint-allow.txt). worker_jobs counts
        // before the job runs, so the batch wrapper's Release increment
        // of jobs_completed orders it for any Acquire reader.
        self.worker_jobs[id].fetch_add(1, Ordering::Relaxed);
        let busy = self.counters.busy_now.fetch_add(1, Ordering::Relaxed) + 1;
        self.counters.peak_busy.fetch_max(busy, Ordering::Relaxed);
        job();
        self.counters.busy_now.fetch_sub(1, Ordering::Relaxed);
    }
}

thread_local! {
    /// `(Arc::as_ptr of the pool's Shared, worker index)` when the
    /// current thread is a pool worker — lets a nested `run_batch` help
    /// execute jobs instead of deadlocking the pool.
    static WORKER: Cell<Option<(usize, usize)>> = const { Cell::new(None) };
}

/// A shared cancellation flag for [`Pool::run_batch_cancellable`].
///
/// Cancellation is cooperative and queue-granular: jobs that have not
/// started when the token fires are *skipped* (their slot resolves to
/// `None`), while jobs already executing run to completion — a
/// simulation cell is never torn mid-run. Clones share the flag, so one
/// token can drain many batches at once (the `fdip-serve` shutdown
/// path).
#[derive(Clone, Debug, Default)]
pub struct CancelToken {
    flag: Arc<std::sync::atomic::AtomicBool>,
}

impl CancelToken {
    /// Creates a token in the not-cancelled state.
    pub fn new() -> CancelToken {
        CancelToken::default()
    }

    /// Fires the token: queued-but-unstarted jobs in any batch guarded
    /// by this token will be skipped.
    pub fn cancel(&self) {
        // Release pairs with the Acquire in `is_cancelled`: a worker
        // that observes the flag also observes everything the
        // cancelling thread wrote before firing it.
        self.flag.store(true, Ordering::Release);
    }

    /// Whether the token has fired.
    pub fn is_cancelled(&self) -> bool {
        self.flag.load(Ordering::Acquire)
    }
}

/// Per-batch completion state: indexed result slots plus a countdown.
struct Batch<T> {
    slots: Mutex<Vec<Option<std::thread::Result<T>>>>,
    remaining: Mutex<usize>,
    done_cv: Condvar,
}

/// A bounded pool of worker threads executing submitted job batches.
///
/// Dropping the pool shuts the workers down (after draining any queued
/// jobs) and joins them; [`global()`] returns a process-wide instance
/// that lives forever.
pub struct Pool {
    shared: Arc<Shared>,
    workers: Vec<JoinHandle<()>>,
    created: Instant,
}

impl Pool {
    /// Spawns a pool with `threads` workers (clamped to at least 1).
    pub fn new(threads: usize) -> Pool {
        let threads = threads.max(1);
        let shared = Arc::new(Shared {
            state: Mutex::new(State {
                injector: VecDeque::new(),
                pending: 0,
                shutdown: false,
            }),
            work_cv: Condvar::new(),
            stripes: (0..threads).map(|_| Mutex::new(VecDeque::new())).collect(),
            counters: Counters::default(),
            worker_jobs: (0..threads).map(|_| AtomicU64::new(0)).collect(),
            queue_depth: Mutex::new(Histogram::new()),
        });
        let workers = (0..threads)
            .map(|id| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("fdip-exec-{id}"))
                    .spawn(move || {
                        WORKER.with(|w| w.set(Some((Arc::as_ptr(&shared) as usize, id))));
                        while let Some(job) = shared.take(id) {
                            shared.execute(id, job);
                        }
                    })
                    .expect("spawn pool worker")
            })
            .collect();
        Pool {
            shared,
            workers,
            created: Instant::now(),
        }
    }

    /// Number of worker threads.
    pub fn threads(&self) -> usize {
        self.workers.len().max(self.shared.stripes.len())
    }

    /// Runs every job of the batch and returns their results in
    /// **submission order** (indexed slots, not completion order), so a
    /// sweep collected through the pool is deterministic no matter how
    /// the scheduler interleaves the work.
    ///
    /// Blocks until the whole batch has finished. May be called from
    /// inside a pool job: the calling worker then helps execute pending
    /// jobs while it waits, so nested batches cannot deadlock even on a
    /// single-worker pool.
    ///
    /// # Panics
    ///
    /// If a job panics, the panic payload is re-raised here — the
    /// submitting call fails, the worker that ran the job survives, and
    /// the remaining jobs of the batch still complete.
    pub fn run_batch<T, F>(&self, jobs: Vec<F>) -> Vec<T>
    where
        F: FnOnce() -> T + Send + 'static,
        T: Send + 'static,
    {
        let n = jobs.len();
        if n == 0 {
            return Vec::new();
        }
        let batch = Arc::new(Batch {
            slots: Mutex::new((0..n).map(|_| None).collect()),
            remaining: Mutex::new(n),
            done_cv: Condvar::new(),
        });
        {
            let mut st = lock(&self.shared.state);
            let mut depth_hist = lock(&self.shared.queue_depth);
            for (i, f) in jobs.into_iter().enumerate() {
                depth_hist.record(st.injector.len() as u64);
                let batch = Arc::clone(&batch);
                let shared = Arc::clone(&self.shared);
                st.injector.push_back(Box::new(move || {
                    let t0 = Instant::now();
                    let result = catch_unwind(AssertUnwindSafe(f));
                    // Release pairs with the Acquire loads in `stats()`:
                    // a submitter that saw its batch complete (via the
                    // slots/remaining mutexes) then calls `stats()` must
                    // observe these increments.
                    shared
                        .counters
                        .busy_ns
                        .fetch_add(t0.elapsed().as_nanos() as u64, Ordering::Release);
                    shared
                        .counters
                        .jobs_completed
                        .fetch_add(1, Ordering::Release);
                    lock(&batch.slots)[i] = Some(result);
                    let mut rem = lock(&batch.remaining);
                    *rem -= 1;
                    if *rem == 0 {
                        batch.done_cv.notify_all();
                    }
                }));
                st.pending += 1;
            }
            self.shared.work_cv.notify_all();
        }
        self.wait_for(&batch);

        let slots = std::mem::take(&mut *lock(&batch.slots));
        let mut out = Vec::with_capacity(n);
        let mut panic_payload = None;
        for slot in slots {
            match slot.expect("batch slot filled") {
                Ok(v) => out.push(v),
                Err(p) => panic_payload = panic_payload.or(Some(p)),
            }
        }
        if let Some(p) = panic_payload {
            resume_unwind(p);
        }
        out
    }

    /// Like [`Pool::run_batch`], but every job is guarded by `token`:
    /// jobs that have not started when the token fires are skipped and
    /// their slots resolve to `None`. Jobs already executing when the
    /// token fires run to completion, so every `Some` result is a fully
    /// computed value — a batch is never torn mid-job.
    pub fn run_batch_cancellable<T, F>(&self, jobs: Vec<F>, token: &CancelToken) -> Vec<Option<T>>
    where
        F: FnOnce() -> T + Send + 'static,
        T: Send + 'static,
    {
        let guarded: Vec<_> = jobs
            .into_iter()
            .map(|f| {
                let token = token.clone();
                move || (!token.is_cancelled()).then(f)
            })
            .collect();
        self.run_batch(guarded)
    }

    /// Blocks until `batch` completes; a worker thread helps execute
    /// pending jobs (its own batch's or anyone else's) instead of idling.
    fn wait_for<T>(&self, batch: &Batch<T>) {
        let me = WORKER.with(Cell::get);
        let helping = matches!(me, Some((pool, _)) if pool == Arc::as_ptr(&self.shared) as usize);
        loop {
            if helping {
                if *lock(&batch.remaining) == 0 {
                    return;
                }
                let id = me.expect("helping implies worker").1;
                if let Some(job) = self.shared.try_take(id) {
                    self.shared.execute(id, job);
                    continue;
                }
            }
            let mut rem = lock(&batch.remaining);
            if *rem == 0 {
                return;
            }
            if helping {
                // Re-check for work soon: our batch may be queued behind
                // jobs only this worker can reach.
                let (guard, _) = batch
                    .done_cv
                    .wait_timeout(rem, std::time::Duration::from_millis(1))
                    .unwrap_or_else(std::sync::PoisonError::into_inner);
                rem = guard;
                if *rem == 0 {
                    return;
                }
            } else {
                while *rem > 0 {
                    rem = batch
                        .done_cv
                        .wait(rem)
                        .unwrap_or_else(std::sync::PoisonError::into_inner);
                }
                return;
            }
        }
    }

    /// A snapshot of the pool's lifetime telemetry.
    pub fn stats(&self) -> PoolStats {
        let elapsed = self.created.elapsed().as_secs_f64().max(1e-9);
        // Acquire pairs with the Release increments in the batch wrapper.
        let jobs = self.shared.counters.jobs_completed.load(Ordering::Acquire);
        let busy_s = self.shared.counters.busy_ns.load(Ordering::Acquire) as f64 / 1e9;
        PoolStats {
            workers: self.threads(),
            jobs_completed: jobs,
            // Advisory gauges; see `execute`/`try_take` (allowlisted).
            peak_busy: self.shared.counters.peak_busy.load(Ordering::Relaxed),
            steals: self.shared.counters.steals.load(Ordering::Relaxed),
            worker_jobs: self
                .shared
                .worker_jobs
                .iter()
                .map(|w| w.load(Ordering::Relaxed))
                .collect(),
            busy_fraction: (busy_s / (elapsed * self.threads() as f64)).min(1.0),
            jobs_per_sec: jobs as f64 / elapsed,
            queue_depth: lock(&self.shared.queue_depth).clone(),
        }
    }
}

impl Drop for Pool {
    fn drop(&mut self) {
        lock(&self.shared.state).shutdown = true;
        self.shared.work_cv.notify_all();
        for h in self.workers.drain(..) {
            let _ = h.join();
        }
    }
}

/// Lifetime telemetry of a [`Pool`], exported into run manifests.
///
/// `workers`, `jobs_completed`, and `peak_busy` are deterministic for a
/// given sweep; the rates and the queue-depth histogram depend on
/// wall-clock scheduling and are stripped alongside the manifest's
/// wall-time fields when comparing runs for determinism.
#[derive(Clone, Debug)]
pub struct PoolStats {
    /// Number of worker threads (the `FDIP_JOBS` bound).
    pub workers: usize,
    /// Jobs finished over the pool's lifetime.
    pub jobs_completed: u64,
    /// Maximum number of workers simultaneously executing jobs.
    pub peak_busy: usize,
    /// Jobs taken from a sibling worker's stripe (scheduling-dependent,
    /// stripped alongside the wall-time fields).
    pub steals: u64,
    /// Jobs executed by each worker, indexed by worker id; sums to
    /// `jobs_completed` when the pool is quiescent
    /// (scheduling-dependent, stripped alongside the wall-time fields).
    pub worker_jobs: Vec<u64>,
    /// Fraction of `workers × elapsed` spent executing jobs, in `[0, 1]`.
    pub busy_fraction: f64,
    /// Jobs finished per wall-clock second of pool lifetime.
    pub jobs_per_sec: f64,
    /// Injector depth observed at each job submission.
    pub queue_depth: Histogram,
}

impl ToJson for PoolStats {
    /// Serializes as `{workers, jobs_completed, peak_busy, steals,
    /// worker_jobs, busy_fraction, jobs_per_sec, queue_depth}`
    /// (histogram in the standard form).
    fn to_json(&self) -> Json {
        Json::obj()
            .with("workers", self.workers)
            .with("jobs_completed", self.jobs_completed)
            .with("peak_busy", self.peak_busy)
            .with("steals", self.steals)
            .with("worker_jobs", self.worker_jobs.clone())
            .with("busy_fraction", self.busy_fraction)
            .with("jobs_per_sec", self.jobs_per_sec)
            .with("queue_depth", self.queue_depth.to_json())
    }
}

/// Parses a job-count knob value; `None`/invalid/zero fall back to the
/// machine's available parallelism.
fn parse_jobs(value: Option<&str>) -> usize {
    value
        .and_then(|v| v.trim().parse::<usize>().ok())
        .filter(|&n| n > 0)
        .unwrap_or_else(|| {
            std::thread::available_parallelism()
                .map(std::num::NonZeroUsize::get)
                .unwrap_or(1)
        })
        .min(512)
}

/// The pool size the environment asks for: `FDIP_JOBS`, defaulting to
/// [`std::thread::available_parallelism`].
pub fn jobs_from_env() -> usize {
    parse_jobs(std::env::var("FDIP_JOBS").ok().as_deref())
}

static GLOBAL: OnceLock<Pool> = OnceLock::new();

/// The shared process-wide pool, created on first use with
/// [`jobs_from_env`] workers (unless [`set_global_jobs`] ran first).
pub fn global() -> &'static Pool {
    GLOBAL.get_or_init(|| Pool::new(jobs_from_env()))
}

/// Sizes the global pool explicitly (the `--jobs` flag). Returns `false`
/// if the global pool was already created — callers should do this
/// before any simulation work.
pub fn set_global_jobs(threads: usize) -> bool {
    GLOBAL.set(Pool::new(threads)).is_ok()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU32;
    use std::time::Duration;

    #[test]
    fn every_job_runs_exactly_once_with_results_in_order() {
        let pool = Pool::new(4);
        let ran = Arc::new(AtomicU32::new(0));
        let jobs: Vec<_> = (0u64..64)
            .map(|i| {
                let ran = Arc::clone(&ran);
                move || {
                    ran.fetch_add(1, Ordering::Relaxed);
                    i * 3
                }
            })
            .collect();
        let out = pool.run_batch(jobs);
        assert_eq!(out, (0u64..64).map(|i| i * 3).collect::<Vec<_>>());
        assert_eq!(ran.load(Ordering::Relaxed), 64);
        assert_eq!(pool.stats().jobs_completed, 64);
    }

    #[test]
    fn empty_batch_returns_immediately() {
        let pool = Pool::new(2);
        let out: Vec<u32> = pool.run_batch(Vec::<fn() -> u32>::new());
        assert!(out.is_empty());
    }

    #[test]
    fn panic_in_a_job_fails_the_submitting_call_not_the_pool() {
        let pool = Pool::new(2);
        let jobs: Vec<Box<dyn FnOnce() -> u32 + Send>> = vec![
            Box::new(|| 1),
            Box::new(|| panic!("job exploded")),
            Box::new(|| 3),
        ];
        let err = catch_unwind(AssertUnwindSafe(|| pool.run_batch(jobs)))
            .expect_err("panic must propagate to the submitter");
        let msg = err
            .downcast_ref::<&str>()
            .copied()
            .map(String::from)
            .or_else(|| err.downcast_ref::<String>().cloned())
            .unwrap_or_default();
        assert!(msg.contains("job exploded"), "payload: {msg}");
        // The pool is still fully operational afterwards.
        let out = pool.run_batch(vec![|| 7u32, || 8u32]);
        assert_eq!(out, vec![7, 8]);
    }

    #[test]
    fn single_worker_pool_degrades_to_serial_submission_order() {
        let pool = Pool::new(1);
        let order = Arc::new(Mutex::new(Vec::new()));
        let jobs: Vec<_> = (0usize..32)
            .map(|i| {
                let order = Arc::clone(&order);
                move || {
                    lock(&order).push(i);
                    i
                }
            })
            .collect();
        let out = pool.run_batch(jobs);
        assert_eq!(out, (0..32).collect::<Vec<_>>());
        assert_eq!(*lock(&order), (0..32).collect::<Vec<_>>());
        assert_eq!(pool.stats().peak_busy, 1);
    }

    #[test]
    fn concurrency_never_exceeds_the_worker_bound() {
        let pool = Pool::new(3);
        let live = Arc::new(AtomicUsize::new(0));
        let peak = Arc::new(AtomicUsize::new(0));
        let jobs: Vec<_> = (0..24)
            .map(|_| {
                let live = Arc::clone(&live);
                let peak = Arc::clone(&peak);
                move || {
                    let now = live.fetch_add(1, Ordering::SeqCst) + 1;
                    peak.fetch_max(now, Ordering::SeqCst);
                    std::thread::sleep(Duration::from_millis(2));
                    live.fetch_sub(1, Ordering::SeqCst);
                }
            })
            .collect();
        pool.run_batch(jobs);
        let observed = peak.load(Ordering::SeqCst);
        assert!(observed <= 3, "peak concurrency {observed} > 3 workers");
        assert!(pool.stats().peak_busy <= 3);
    }

    #[test]
    fn cancel_token_skips_unstarted_jobs() {
        // One worker makes the schedule deterministic: job 0 fires the
        // token while running, so every job queued behind it is skipped.
        let pool = Pool::new(1);
        let token = CancelToken::new();
        let mut jobs: Vec<Box<dyn FnOnce() -> u32 + Send>> = Vec::new();
        let t = token.clone();
        jobs.push(Box::new(move || {
            t.cancel();
            1
        }));
        for i in 2..=5u32 {
            jobs.push(Box::new(move || i));
        }
        let out = pool.run_batch_cancellable(jobs, &token);
        assert_eq!(out[0], Some(1), "already-running job completes");
        assert!(
            out[1..].iter().all(Option::is_none),
            "queued jobs must be skipped: {out:?}"
        );
        assert!(token.is_cancelled());
    }

    #[test]
    fn unfired_token_leaves_batch_untouched() {
        let pool = Pool::new(2);
        let token = CancelToken::new();
        let jobs: Vec<_> = (0..8u32).map(|i| move || i * i).collect();
        let out = pool.run_batch_cancellable(jobs, &token);
        assert_eq!(out, (0..8u32).map(|i| Some(i * i)).collect::<Vec<_>>());
        assert!(!token.is_cancelled());
    }

    #[test]
    fn nested_batches_complete_even_on_one_worker() {
        let pool = Arc::new(Pool::new(1));
        let inner_pool = Arc::clone(&pool);
        let out = pool.run_batch(vec![move || {
            // Submitted from inside a pool job: the worker must help
            // drain the sub-batch instead of deadlocking on itself.
            let sub = inner_pool.run_batch(vec![|| 10u32, || 20u32, || 30u32]);
            sub.iter().sum::<u32>()
        }]);
        assert_eq!(out, vec![60]);
    }

    #[test]
    fn concurrent_submitters_share_the_pool() {
        let pool = Arc::new(Pool::new(2));
        std::thread::scope(|scope| {
            let handles: Vec<_> = (0u64..6)
                .map(|t| {
                    let pool = Arc::clone(&pool);
                    scope.spawn(move || {
                        let jobs: Vec<_> = (0u64..16).map(|i| move || t * 100 + i).collect();
                        pool.run_batch(jobs)
                    })
                })
                .collect();
            for (t, h) in handles.into_iter().enumerate() {
                let got = h.join().expect("submitter");
                let want: Vec<u64> = (0..16).map(|i| t as u64 * 100 + i).collect();
                assert_eq!(got, want, "submitter {t} got foreign results");
            }
        });
        assert_eq!(pool.stats().jobs_completed, 96);
        assert!(pool.stats().peak_busy <= 2);
    }

    #[test]
    fn stats_report_queue_depth_and_rates() {
        let pool = Pool::new(2);
        pool.run_batch((0..10).map(|i| move || i).collect::<Vec<_>>());
        let s = pool.stats();
        assert_eq!(s.workers, 2);
        assert_eq!(s.queue_depth.count(), 10);
        assert!(s.jobs_per_sec > 0.0);
        assert!((0.0..=1.0).contains(&s.busy_fraction));
        assert_eq!(s.worker_jobs.len(), 2);
        assert_eq!(
            s.worker_jobs.iter().sum::<u64>(),
            s.jobs_completed,
            "per-worker tallies must sum to the total"
        );
        let j = s.to_json();
        for key in [
            "workers",
            "jobs_completed",
            "peak_busy",
            "steals",
            "worker_jobs",
            "busy_fraction",
            "jobs_per_sec",
            "queue_depth",
        ] {
            assert!(j.get(key).is_some(), "missing {key}");
        }
    }

    #[test]
    fn jobs_knob_parses_with_fallback() {
        assert_eq!(parse_jobs(Some("8")), 8);
        assert_eq!(parse_jobs(Some(" 3 ")), 3);
        let fallback = parse_jobs(None);
        assert!(fallback >= 1);
        assert_eq!(parse_jobs(Some("0")), fallback);
        assert_eq!(parse_jobs(Some("not-a-number")), fallback);
        assert_eq!(parse_jobs(Some("99999")), 512);
    }
}
