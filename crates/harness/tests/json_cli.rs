//! End-to-end check of the machine-readable pipeline: run the actual
//! `fdip-run` binary with `--json`, then parse the emitted file back
//! through the in-repo JSON reader and verify the documented schema.

use fdip_telemetry::{Json, SCHEMA_VERSION};
use std::process::Command;

fn run_quick_suite_json(path: &std::path::Path, extra: &[&str]) -> Json {
    let mut cmd = Command::new(env!("CARGO_BIN_EXE_fdip-run"));
    cmd.args([
        "--json",
        path.to_str().unwrap(),
        "--warmup",
        "1000",
        "--instrs",
        "5000",
    ]);
    cmd.args(extra);
    let out = cmd.output().expect("fdip-run spawns");
    assert!(
        out.status.success(),
        "fdip-run failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = std::fs::read_to_string(path).expect("results file written");
    Json::parse(&text).expect("emitted file is valid JSON")
}

#[test]
fn fdip_run_json_emits_the_documented_schema() {
    let dir = std::env::temp_dir();
    let path = dir.join(format!("fdip_results_{}.json", std::process::id()));
    let doc = run_quick_suite_json(&path, &[]);
    std::fs::remove_file(&path).ok();

    // Top level: versioned schema with manifest, workloads, aggregate.
    assert_eq!(
        doc.get("schema_version").and_then(Json::as_u64),
        Some(SCHEMA_VERSION)
    );
    let manifest = doc.get("manifest").expect("manifest present");
    assert_eq!(
        manifest.get("tool").and_then(Json::as_str),
        Some("fdip-run")
    );
    assert_eq!(manifest.get("suite").and_then(Json::as_str), Some("quick"));
    assert_eq!(
        manifest.get("workload_count").and_then(Json::as_u64),
        Some(3)
    );
    assert!(manifest
        .get("git_revision")
        .and_then(Json::as_str)
        .is_some());
    assert!(manifest.get("wall_seconds").and_then(Json::as_f64).unwrap() > 0.0);

    // Per-workload: IPC/MPKI plus the two headline histograms.
    let workloads = doc.get("workloads").and_then(Json::as_arr).unwrap();
    assert_eq!(workloads.len(), 3);
    for w in workloads {
        let name = w.get("name").and_then(Json::as_str).unwrap();
        let derived = w.get("derived").expect("derived metrics");
        let ipc = derived.get("ipc").and_then(Json::as_f64).unwrap();
        assert!(ipc > 0.1 && ipc < 8.0, "{name}: implausible IPC {ipc}");
        assert!(derived.get("branch_mpki").and_then(Json::as_f64).is_some());
        assert!(derived.get("l1i_mpki").and_then(Json::as_f64).is_some());

        let cycles = w
            .get("counters")
            .and_then(|c| c.get("cycles"))
            .and_then(Json::as_u64)
            .unwrap();
        let hists = w.get("histograms").expect("histograms present");
        let ftq_count = hists
            .get("ftq_occupancy")
            .and_then(|h| h.get("count"))
            .and_then(Json::as_u64)
            .unwrap();
        assert_eq!(ftq_count, cycles, "{name}: one occupancy sample per cycle");
        let lead_count = hists
            .get("prefetch_lead_time")
            .and_then(|h| h.get("count"))
            .and_then(Json::as_u64)
            .unwrap();
        assert!(lead_count > 0, "{name}: lead-time histogram empty");

        let samples = w.get("sampled_ipc").and_then(Json::as_arr).unwrap();
        for s in samples {
            assert!(s.as_f64().unwrap() >= 0.0);
        }
    }

    let agg = doc.get("aggregate").expect("aggregate present");
    assert!(agg.get("geomean_ipc").and_then(Json::as_f64).unwrap() > 0.1);
}

#[test]
fn fdip_run_single_workload_json_wraps_one_result() {
    let dir = std::env::temp_dir();
    let path = dir.join(format!("fdip_single_{}.json", std::process::id()));
    let doc = run_quick_suite_json(&path, &["--workload", "spec_a"]);
    std::fs::remove_file(&path).ok();

    let manifest = doc.get("manifest").unwrap();
    assert_eq!(
        manifest.get("suite").and_then(Json::as_str),
        Some("workload:spec_a")
    );
    let workloads = doc.get("workloads").and_then(Json::as_arr).unwrap();
    assert_eq!(workloads.len(), 1);
    assert_eq!(
        workloads[0].get("name").and_then(Json::as_str),
        Some("spec_a")
    );
}
