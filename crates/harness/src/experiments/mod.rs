//! The experiment registry: one entry per table/figure of the paper.
//!
//! All speedups are geometric-mean IPC improvements over the paper's
//! baseline — **no prefetching, no FDP** (a 2-entry FTQ) — and MPKI is
//! the arithmetic mean, exactly as §V specifies.

mod fig1;
mod fig10;
mod fig11;
mod fig12;
mod fig13;
mod fig14;
mod fig6;
mod fig7;
mod fig8;
mod fig9;
mod tables;

use crate::report::Report;
use crate::runner::Runner;
use fdip_sim::CoreConfig;

/// A registered experiment.
pub struct Experiment {
    /// Short id used on the command line (`fig7`).
    pub id: &'static str,
    /// What it reproduces.
    pub title: &'static str,
    /// Entry point.
    pub run: fn(&Runner) -> Report,
}

/// Every experiment, in paper order.
pub fn all() -> Vec<Experiment> {
    vec![
        Experiment {
            id: "fig1",
            title: "Fig. 1 — prefetching limit study (IPC-1 framework)",
            run: fig1::run,
        },
        Experiment {
            id: "tab3",
            title: "Table III — FTQ hardware overhead",
            run: tables::tab3,
        },
        Experiment {
            id: "tab4",
            title: "Table IV — common core parameters",
            run: tables::tab4,
        },
        Experiment {
            id: "fig6a",
            title: "Fig. 6a — IPC improvement by instruction prefetching",
            run: fig6::run_a,
        },
        Experiment {
            id: "fig6b",
            title: "Fig. 6b — per-workload EIP-128KB improvement vs branch MPKI",
            run: fig6::run_b,
        },
        Experiment {
            id: "fig7",
            title: "Fig. 7 — PFC vs BTB size",
            run: fig7::run,
        },
        Experiment {
            id: "fig8",
            title: "Fig. 8 — branch history management (Table V policies)",
            run: fig8::run,
        },
        Experiment {
            id: "fig9",
            title: "Fig. 9 — ISO-budget comparison (BTB vs dedicated prefetcher)",
            run: fig9::run,
        },
        Experiment {
            id: "fig10",
            title: "Fig. 10 — BTB prefetching with PFC (Divide-and-Conquer)",
            run: fig10::run,
        },
        Experiment {
            id: "fig11",
            title: "Fig. 11 — BTB capacity sensitivity",
            run: fig11::run,
        },
        Experiment {
            id: "fig12",
            title: "Fig. 12 — branch direction predictor sensitivity",
            run: fig12::run,
        },
        Experiment {
            id: "fig13",
            title: "Fig. 13 — prediction bandwidth / BTB latency sensitivity",
            run: fig13::run,
        },
        Experiment {
            id: "fig14",
            title: "Fig. 14 — FTQ size sensitivity and exposure classification",
            run: fig14::run,
        },
    ]
}

/// Looks an experiment up by id.
pub fn by_id(id: &str) -> Option<Experiment> {
    all().into_iter().find(|e| e.id == id)
}

/// The paper's reference baseline configuration: no prefetching, no FDP.
///
/// Experiments put this first in their config grid and submit the whole
/// grid as **one** pool batch ([`Runner::run_configs`]), so the baseline
/// runs overlap with every sweep point instead of serializing ahead of
/// them.
pub(crate) fn baseline_cfg() -> CoreConfig {
    CoreConfig::no_fdp()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_covers_every_artifact() {
        let ids: Vec<&str> = all().iter().map(|e| e.id).collect();
        for want in [
            "fig1", "tab3", "tab4", "fig6a", "fig6b", "fig7", "fig8", "fig9", "fig10", "fig11",
            "fig12", "fig13", "fig14",
        ] {
            assert!(ids.contains(&want), "missing {want}");
        }
        assert_eq!(ids.len(), 13);
    }

    #[test]
    fn lookup_by_id() {
        assert!(by_id("fig7").is_some());
        assert!(by_id("nope").is_none());
    }
}
