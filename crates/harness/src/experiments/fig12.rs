//! Fig. 12 — direction predictor sensitivity: Gshare 8KB, TAGE at
//! 9/18/36KB, perfect direction, and Perfect-All (§VI-F2).

use super::baseline_cfg;
use crate::report::{Report, Table};
use crate::runner::Runner;
use fdip_bpred::{GshareConfig, TageConfig};
use fdip_sim::{CoreConfig, DirectionConfig};

pub(super) fn run(runner: &Runner) -> Report {
    let mut report = Report::new("fig12");
    let points: [(&str, DirectionConfig); 5] = [
        (
            "Gshare-8KB",
            DirectionConfig::Gshare(GshareConfig::default()),
        ),
        ("TAGE-9KB", DirectionConfig::Tage(TageConfig::kb9())),
        ("TAGE-18KB", DirectionConfig::Tage(TageConfig::kb18())),
        ("TAGE-36KB", DirectionConfig::Tage(TageConfig::kb36())),
        ("PerfectDir", DirectionConfig::Perfect),
    ];

    // One batch: baseline + (PFC off, PFC on) per predictor + Perfect-All.
    let mut cfgs = vec![baseline_cfg()];
    for (_, dir) in &points {
        for pfc in [false, true] {
            cfgs.push(CoreConfig {
                direction: *dir,
                ..CoreConfig::fdp().with_pfc(pfc)
            });
        }
    }
    // Perfect All: perfect direction + perfect targets.
    cfgs.push(CoreConfig {
        direction: DirectionConfig::Perfect,
        perfect_btb: true,
        perfect_indirect: true,
        ..CoreConfig::fdp()
    });
    let grid = runner.run_configs(&cfgs);
    let base = &grid[0];

    let mut t = Table::new(
        "Fig. 12 — FDP speedup over baseline (%) and MPKI, by direction predictor",
        &["predictor", "PFC off %", "PFC on %", "MPKI off", "MPKI on"],
    );
    for (i, (label, _)) in points.iter().enumerate() {
        let off = &grid[1 + 2 * i];
        let on = &grid[2 + 2 * i];
        let s_off = Runner::speedup_pct(base, off);
        let s_on = Runner::speedup_pct(base, on);
        t.row_f(
            label,
            &[s_off, s_on, Runner::mean_mpki(off), Runner::mean_mpki(on)],
        );
        report.metric(&format!("speedup_{label}_pfc_off"), s_off);
        report.metric(&format!("speedup_{label}_pfc_on"), s_on);
    }
    let s = Runner::speedup_pct(base, &grid[grid.len() - 1]);
    t.row_f("PerfectAll", &[f64::NAN, s, f64::NAN, 0.0]);
    report.metric("speedup_PerfectAll", s);
    report.tables.push(t);
    report
}
