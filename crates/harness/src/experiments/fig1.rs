//! Fig. 1 — the prefetching limit study that motivates the paper: the
//! IPC-1 prefetchers with and without a deep-FTQ FDP frontend.

use super::baseline_cfg;
use crate::report::{Report, Table};
use crate::runner::Runner;
use fdip_prefetch::PrefetcherKind;
use fdip_sim::CoreConfig;

pub(super) fn run(runner: &Runner) -> Report {
    let mut report = Report::new("fig1");

    let prefetchers = [
        PrefetcherKind::None,
        PrefetcherKind::NextLine,
        PrefetcherKind::FnlMma,
        PrefetcherKind::Rdip,
        PrefetcherKind::Djolt,
        PrefetcherKind::Eip128,
        PrefetcherKind::Perfect,
    ];

    // One batch: baseline + (no-FDP, FDP) per prefetcher.
    let mut cfgs = vec![baseline_cfg()];
    for pk in prefetchers {
        cfgs.push(CoreConfig::no_fdp().with_prefetcher(pk));
        cfgs.push(CoreConfig::fdp().with_prefetcher(pk));
    }
    let grid = runner.run_configs(&cfgs);
    let base = &grid[0];

    let mut t = Table::new(
        "Fig. 1 — speedup over baseline (no prefetch, no FDP), %",
        &["prefetcher", "no FDP (2-entry FTQ)", "FDP (24-entry FTQ)"],
    );
    for (i, pk) in prefetchers.into_iter().enumerate() {
        let s0 = Runner::speedup_pct(base, &grid[1 + 2 * i]);
        let s1 = Runner::speedup_pct(base, &grid[2 + 2 * i]);
        t.row_f(pk.label(), &[s0, s1]);
        report.metric(&format!("{}_nofdp_pct", pk.label()), s0);
        report.metric(&format!("{}_fdp_pct", pk.label()), s1);
    }
    report.tables.push(t);
    report
}
