//! Fig. 1 — the prefetching limit study that motivates the paper: the
//! IPC-1 prefetchers with and without a deep-FTQ FDP frontend.

use super::baseline;
use crate::report::{Report, Table};
use crate::runner::Runner;
use fdip_prefetch::PrefetcherKind;
use fdip_sim::CoreConfig;

pub(super) fn run(runner: &Runner) -> Report {
    let mut report = Report::new("fig1");
    let base = baseline(runner);

    let prefetchers = [
        PrefetcherKind::None,
        PrefetcherKind::NextLine,
        PrefetcherKind::FnlMma,
        PrefetcherKind::Djolt,
        PrefetcherKind::Eip128,
        PrefetcherKind::Perfect,
    ];

    let mut t = Table::new(
        "Fig. 1 — speedup over baseline (no prefetch, no FDP), %",
        &["prefetcher", "no FDP (2-entry FTQ)", "FDP (24-entry FTQ)"],
    );
    for pk in prefetchers {
        let no_fdp = runner.run_config(&CoreConfig::no_fdp().with_prefetcher(pk));
        let fdp = runner.run_config(&CoreConfig::fdp().with_prefetcher(pk));
        let s0 = Runner::speedup_pct(&base, &no_fdp);
        let s1 = Runner::speedup_pct(&base, &fdp);
        t.row_f(pk.label(), &[s0, s1]);
        report.metric(&format!("{}_nofdp_pct", pk.label()), s0);
        report.metric(&format!("{}_fdp_pct", pk.label()), s1);
    }
    report.tables.push(t);
    report
}
