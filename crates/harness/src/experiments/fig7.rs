//! Fig. 7 — PFC effectiveness as the BTB shrinks from 32K to 1K entries.

use super::baseline;
use crate::report::{Report, Table};
use crate::runner::Runner;
use fdip_sim::CoreConfig;

pub(super) fn run(runner: &Runner) -> Report {
    let mut report = Report::new("fig7");
    let base = baseline(runner);
    let mut t = Table::new(
        "Fig. 7 — FDP speedup over baseline (%) and branch MPKI, by BTB size",
        &[
            "BTB entries",
            "PFC off %",
            "PFC on %",
            "MPKI off",
            "MPKI on",
        ],
    );
    for entries in [1024usize, 2048, 4096, 8192, 16384, 32768] {
        let off = runner.run_config(&CoreConfig::fdp().with_btb_entries(entries).with_pfc(false));
        let on = runner.run_config(&CoreConfig::fdp().with_btb_entries(entries).with_pfc(true));
        let s_off = Runner::speedup_pct(&base, &off);
        let s_on = Runner::speedup_pct(&base, &on);
        let m_off = Runner::mean_mpki(&off);
        let m_on = Runner::mean_mpki(&on);
        let label = format!("{}K", entries / 1024);
        t.row_f(&label, &[s_off, s_on, m_off, m_on]);
        report.metric(&format!("speedup_{label}_pfc_off"), s_off);
        report.metric(&format!("speedup_{label}_pfc_on"), s_on);
        report.metric(&format!("mpki_{label}_pfc_off"), m_off);
        report.metric(&format!("mpki_{label}_pfc_on"), m_on);
    }
    report.tables.push(t);
    report
}
