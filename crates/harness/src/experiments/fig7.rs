//! Fig. 7 — PFC effectiveness as the BTB shrinks from 32K to 1K entries.

use super::baseline_cfg;
use crate::report::{Report, Table};
use crate::runner::Runner;
use fdip_sim::CoreConfig;

const BTB_SIZES: [usize; 6] = [1024, 2048, 4096, 8192, 16384, 32768];

pub(super) fn run(runner: &Runner) -> Report {
    let mut report = Report::new("fig7");

    // One batch: baseline + (PFC off, PFC on) per BTB size.
    let mut cfgs = vec![baseline_cfg()];
    for entries in BTB_SIZES {
        cfgs.push(CoreConfig::fdp().with_btb_entries(entries).with_pfc(false));
        cfgs.push(CoreConfig::fdp().with_btb_entries(entries).with_pfc(true));
    }
    let grid = runner.run_configs(&cfgs);
    let base = &grid[0];

    let mut t = Table::new(
        "Fig. 7 — FDP speedup over baseline (%) and branch MPKI, by BTB size",
        &[
            "BTB entries",
            "PFC off %",
            "PFC on %",
            "MPKI off",
            "MPKI on",
        ],
    );
    for (i, entries) in BTB_SIZES.into_iter().enumerate() {
        let off = &grid[1 + 2 * i];
        let on = &grid[2 + 2 * i];
        let s_off = Runner::speedup_pct(base, off);
        let s_on = Runner::speedup_pct(base, on);
        let m_off = Runner::mean_mpki(off);
        let m_on = Runner::mean_mpki(on);
        let label = format!("{}K", entries / 1024);
        t.row_f(&label, &[s_off, s_on, m_off, m_on]);
        report.metric(&format!("speedup_{label}_pfc_off"), s_off);
        report.metric(&format!("speedup_{label}_pfc_on"), s_on);
        report.metric(&format!("mpki_{label}_pfc_off"), m_off);
        report.metric(&format!("mpki_{label}_pfc_on"), m_on);
    }
    report.tables.push(t);
    report
}
