//! Fig. 8 — branch history management: the Table V policies (THR, Ideal,
//! GHR0–GHR3) with PFC off/on.

use super::baseline_cfg;
use crate::report::{Report, Table};
use crate::runner::Runner;
use fdip_bpred::HistoryPolicy;
use fdip_sim::CoreConfig;

pub(super) fn run(runner: &Runner) -> Report {
    let mut report = Report::new("fig8");

    // One batch: baseline + (PFC off, PFC on) per Table V policy.
    let mut cfgs = vec![baseline_cfg()];
    for policy in HistoryPolicy::ALL {
        cfgs.push(CoreConfig::fdp().with_policy(policy).with_pfc(false));
        cfgs.push(CoreConfig::fdp().with_policy(policy).with_pfc(true));
    }
    let grid = runner.run_configs(&cfgs);
    let base = &grid[0];

    let mut t = Table::new(
        "Fig. 8 — FDP speedup over baseline (%) and branch MPKI, by history policy",
        &["policy", "PFC off %", "PFC on %", "MPKI off", "MPKI on"],
    );
    for (i, policy) in HistoryPolicy::ALL.into_iter().enumerate() {
        let off = &grid[1 + 2 * i];
        let on = &grid[2 + 2 * i];
        let s_off = Runner::speedup_pct(base, off);
        let s_on = Runner::speedup_pct(base, on);
        let m_off = Runner::mean_mpki(off);
        let m_on = Runner::mean_mpki(on);
        t.row_f(policy.label(), &[s_off, s_on, m_off, m_on]);
        report.metric(&format!("speedup_{}_pfc_off", policy.label()), s_off);
        report.metric(&format!("speedup_{}_pfc_on", policy.label()), s_on);
        report.metric(&format!("mpki_{}_pfc_on", policy.label()), m_on);
        // Fixup-flush cost is the mechanism behind GHR2/GHR3's stalls.
        report.metric(
            &format!("fixups_per_ki_{}", policy.label()),
            Runner::mean_of(on, |s| {
                1000.0 * s.fixup_flushes as f64 / s.retired.max(1) as f64
            }),
        );
    }
    report.tables.push(t);
    report
}
