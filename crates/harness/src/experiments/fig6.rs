//! Fig. 6 — instruction prefetching performance: (a) suite-level speedup
//! of each prefetcher with FDP off/on, plus perfect-BTB upper bounds;
//! (b) per-workload EIP-128KB improvement against branch MPKI.

use super::baseline_cfg;
use crate::report::{Report, Table};
use crate::runner::Runner;
use fdip_prefetch::PrefetcherKind;
use fdip_sim::CoreConfig;

pub(super) fn run_a(runner: &Runner) -> Report {
    let mut report = Report::new("fig6a");

    let prefetchers = [
        PrefetcherKind::None,
        PrefetcherKind::NextLine,
        PrefetcherKind::FnlMma,
        PrefetcherKind::Djolt,
        PrefetcherKind::Eip27,
        PrefetcherKind::Eip128,
        PrefetcherKind::Perfect,
    ];

    // One batch: baseline, (no-FDP, FDP) per prefetcher, then the two
    // perfect-BTB bounds.
    let perfect_btb = CoreConfig {
        perfect_btb: true,
        ..CoreConfig::fdp()
    };
    let mut cfgs = vec![baseline_cfg()];
    for pk in prefetchers {
        cfgs.push(CoreConfig::no_fdp().with_prefetcher(pk));
        cfgs.push(CoreConfig::fdp().with_prefetcher(pk));
    }
    cfgs.push(perfect_btb.clone());
    cfgs.push(perfect_btb.with_prefetcher(PrefetcherKind::Perfect));
    let grid = runner.run_configs(&cfgs);
    let base = &grid[0];

    let mut t = Table::new(
        "Fig. 6a — speedup over baseline, %",
        &["config", "no FDP", "FDP"],
    );
    for (i, pk) in prefetchers.into_iter().enumerate() {
        let s0 = Runner::speedup_pct(base, &grid[1 + 2 * i]);
        let s1 = Runner::speedup_pct(base, &grid[2 + 2 * i]);
        t.row_f(pk.label(), &[s0, s1]);
        report.metric(&format!("{}_nofdp_pct", pk.label()), s0);
        report.metric(&format!("{}_fdp_pct", pk.label()), s1);
    }

    // Perfect-BTB bounds (§VI-A: +3.4% on FDP in the paper).
    let s_btb = Runner::speedup_pct(base, &grid[grid.len() - 2]);
    t.row_f("FDP+perfBTB", &[f64::NAN, s_btb]);
    report.metric("fdp_perfbtb_pct", s_btb);
    let s_all = Runner::speedup_pct(base, &grid[grid.len() - 1]);
    t.row_f("FDP+perfBTB+Perfect", &[f64::NAN, s_all]);
    report.metric("fdp_perfbtb_perfect_pct", s_all);
    report.tables.push(t);
    report
}

pub(super) fn run_b(runner: &Runner) -> Report {
    let mut report = Report::new("fig6b");
    let cfgs = [
        CoreConfig::no_fdp(),
        CoreConfig::no_fdp().with_prefetcher(PrefetcherKind::Eip128),
        CoreConfig::fdp(),
        CoreConfig::fdp().with_prefetcher(PrefetcherKind::Eip128),
    ];
    let grid = runner.run_configs(&cfgs);
    let (base_no_fdp, eip_no_fdp, base_fdp, eip_fdp) = (&grid[0], &grid[1], &grid[2], &grid[3]);

    let mut t = Table::new(
        "Fig. 6b — per-workload EIP-128KB improvement (%, vs same-frontend no-prefetch)",
        &["workload", "branch MPKI", "no FDP", "with FDP"],
    );
    let mut max_no_fdp: f64 = 0.0;
    let mut max_fdp: f64 = 0.0;
    for (i, name) in runner.names().iter().enumerate() {
        let mpki = base_no_fdp[i].branch_mpki();
        let up0 = 100.0 * (eip_no_fdp[i].ipc() / base_no_fdp[i].ipc() - 1.0);
        let up1 = 100.0 * (eip_fdp[i].ipc() / base_fdp[i].ipc() - 1.0);
        max_no_fdp = max_no_fdp.max(up0);
        max_fdp = max_fdp.max(up1);
        t.row_f(name, &[mpki, up0, up1]);
    }
    report.metric("max_uplift_nofdp_pct", max_no_fdp);
    report.metric("max_uplift_fdp_pct", max_fdp);
    report.tables.push(t);
    report
}
