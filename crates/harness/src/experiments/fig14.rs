//! Fig. 14 — FTQ size sensitivity: speedup normalised to a 2-entry FTQ
//! plus the exposure classification of I-cache misses (§VI-G).

use crate::report::{Report, Table};
use crate::runner::Runner;
use fdip_sim::CoreConfig;

const FTQ_SIZES: [usize; 7] = [2, 4, 8, 12, 16, 24, 32];

pub(super) fn run(runner: &Runner) -> Report {
    let mut report = Report::new("fig14");

    // One batch over all FTQ sizes; the 2-entry point (== no FDP) doubles
    // as the normalisation base, as in the paper.
    let cfgs: Vec<CoreConfig> = FTQ_SIZES
        .iter()
        .map(|&entries| CoreConfig::fdp().with_ftq(entries))
        .collect();
    let grid = runner.run_configs(&cfgs);
    let base = &grid[0];
    let base_exposed: f64 = Runner::mean_of(base, |s| (s.miss_partial + s.miss_full) as f64);

    let mut t = Table::new(
        "Fig. 14 — FTQ size sensitivity (speedup vs 2-entry FTQ; miss exposure)",
        &[
            "FTQ entries",
            "speedup %",
            "covered",
            "partial",
            "full",
            "exposed frac",
        ],
    );
    for (i, entries) in FTQ_SIZES.into_iter().enumerate() {
        let stats = &grid[i];
        let s = Runner::speedup_pct(base, stats);
        let covered = Runner::mean_of(stats, |s| s.miss_covered as f64);
        let partial = Runner::mean_of(stats, |s| s.miss_partial as f64);
        let full = Runner::mean_of(stats, |s| s.miss_full as f64);
        let frac = Runner::mean_of(stats, |s| s.exposed_fraction());
        t.row_f(&entries.to_string(), &[s, covered, partial, full, frac]);
        report.metric(&format!("speedup_ftq{entries}"), s);
        report.metric(&format!("exposed_frac_ftq{entries}"), frac);
        if entries == 24 {
            let exposed = partial + full;
            let removed = if base_exposed > 0.0 {
                100.0 * (1.0 - exposed / base_exposed)
            } else {
                0.0
            };
            report.metric("exposed_removed_at_24_pct", removed);
        }
    }
    report.tables.push(t);
    report
}
