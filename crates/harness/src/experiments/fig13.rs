//! Fig. 13 — prediction bandwidth (B6/B12/B18/B18m) and BTB latency
//! (1–4 cycles) sensitivity (§VI-F3).

use super::baseline;
use crate::report::{Report, Table};
use crate::runner::Runner;
use fdip_sim::CoreConfig;

pub(super) fn run(runner: &Runner) -> Report {
    let mut report = Report::new("fig13");
    let base = baseline(runner);

    let mut t = Table::new(
        "Fig. 13a — FDP speedup over baseline (%), by prediction bandwidth",
        &["bandwidth", "speedup %"],
    );
    let bws: [(&str, usize, bool); 4] = [
        ("B6", 6, false),
        ("B12", 12, false),
        ("B18", 18, false),
        ("B18m", 18, true),
    ];
    for (label, bw, multi) in bws {
        let cfg = CoreConfig {
            pred_bw: bw,
            multi_taken: multi,
            ..CoreConfig::fdp()
        };
        let s = Runner::speedup_pct(&base, &runner.run_config(&cfg));
        t.row_f(label, &[s]);
        report.metric(&format!("speedup_{label}"), s);
    }
    report.tables.push(t);

    let mut t2 = Table::new(
        "Fig. 13b — FDP speedup over baseline (%), by BTB latency",
        &["BTB latency", "speedup %"],
    );
    for lat in 1u64..=4 {
        let cfg = CoreConfig {
            btb_latency: lat,
            ..CoreConfig::fdp()
        };
        let s = Runner::speedup_pct(&base, &runner.run_config(&cfg));
        t2.row_f(&format!("{lat} cycle"), &[s]);
        report.metric(&format!("speedup_btblat{lat}"), s);
    }
    report.tables.push(t2);
    report
}
