//! Fig. 13 — prediction bandwidth (B6/B12/B18/B18m) and BTB latency
//! (1–4 cycles) sensitivity (§VI-F3).

use super::baseline_cfg;
use crate::report::{Report, Table};
use crate::runner::Runner;
use fdip_sim::CoreConfig;

const BWS: [(&str, usize, bool); 4] = [
    ("B6", 6, false),
    ("B12", 12, false),
    ("B18", 18, false),
    ("B18m", 18, true),
];
const BTB_LATENCIES: [u64; 4] = [1, 2, 3, 4];

pub(super) fn run(runner: &Runner) -> Report {
    let mut report = Report::new("fig13");

    // One batch: baseline + the bandwidth points + the latency points.
    let mut cfgs = vec![baseline_cfg()];
    for (_, bw, multi) in BWS {
        cfgs.push(CoreConfig {
            pred_bw: bw,
            multi_taken: multi,
            ..CoreConfig::fdp()
        });
    }
    for lat in BTB_LATENCIES {
        cfgs.push(CoreConfig {
            btb_latency: lat,
            ..CoreConfig::fdp()
        });
    }
    let grid = runner.run_configs(&cfgs);
    let base = &grid[0];

    let mut t = Table::new(
        "Fig. 13a — FDP speedup over baseline (%), by prediction bandwidth",
        &["bandwidth", "speedup %"],
    );
    for (i, (label, _, _)) in BWS.iter().enumerate() {
        let s = Runner::speedup_pct(base, &grid[1 + i]);
        t.row_f(label, &[s]);
        report.metric(&format!("speedup_{label}"), s);
    }
    report.tables.push(t);

    let mut t2 = Table::new(
        "Fig. 13b — FDP speedup over baseline (%), by BTB latency",
        &["BTB latency", "speedup %"],
    );
    for (i, lat) in BTB_LATENCIES.into_iter().enumerate() {
        let s = Runner::speedup_pct(base, &grid[1 + BWS.len() + i]);
        t2.row_f(&format!("{lat} cycle"), &[s]);
        report.metric(&format!("speedup_btblat{lat}"), s);
    }
    report.tables.push(t2);
    report
}
