//! Fig. 11 — BTB capacity sensitivity (1K–32K entries) with FDP on/off.

use super::baseline;
use crate::report::{Report, Table};
use crate::runner::Runner;
use fdip_sim::CoreConfig;

pub(super) fn run(runner: &Runner) -> Report {
    let mut report = Report::new("fig11");
    let base = baseline(runner);
    let mut t = Table::new(
        "Fig. 11 — speedup over baseline (%) and branch MPKI, by BTB capacity",
        &["BTB entries", "no FDP %", "FDP %", "MPKI noFDP", "MPKI FDP"],
    );
    for entries in [1024usize, 2048, 4096, 8192, 16384, 32768] {
        let no_fdp = runner.run_config(&CoreConfig::no_fdp().with_btb_entries(entries));
        let fdp = runner.run_config(&CoreConfig::fdp().with_btb_entries(entries));
        let s0 = Runner::speedup_pct(&base, &no_fdp);
        let s1 = Runner::speedup_pct(&base, &fdp);
        let label = format!("{}K", entries / 1024);
        t.row_f(
            &label,
            &[s0, s1, Runner::mean_mpki(&no_fdp), Runner::mean_mpki(&fdp)],
        );
        report.metric(&format!("speedup_{label}_nofdp"), s0);
        report.metric(&format!("speedup_{label}_fdp"), s1);
    }
    report.tables.push(t);
    report
}
