//! Fig. 11 — BTB capacity sensitivity (1K–32K entries) with FDP on/off.

use super::baseline_cfg;
use crate::report::{Report, Table};
use crate::runner::Runner;
use fdip_sim::CoreConfig;

const BTB_SIZES: [usize; 6] = [1024, 2048, 4096, 8192, 16384, 32768];

pub(super) fn run(runner: &Runner) -> Report {
    let mut report = Report::new("fig11");

    // One batch: baseline + (no FDP, FDP) per BTB capacity.
    let mut cfgs = vec![baseline_cfg()];
    for entries in BTB_SIZES {
        cfgs.push(CoreConfig::no_fdp().with_btb_entries(entries));
        cfgs.push(CoreConfig::fdp().with_btb_entries(entries));
    }
    let grid = runner.run_configs(&cfgs);
    let base = &grid[0];

    let mut t = Table::new(
        "Fig. 11 — speedup over baseline (%) and branch MPKI, by BTB capacity",
        &["BTB entries", "no FDP %", "FDP %", "MPKI noFDP", "MPKI FDP"],
    );
    for (i, entries) in BTB_SIZES.into_iter().enumerate() {
        let no_fdp = &grid[1 + 2 * i];
        let fdp = &grid[2 + 2 * i];
        let s0 = Runner::speedup_pct(base, no_fdp);
        let s1 = Runner::speedup_pct(base, fdp);
        let label = format!("{}K", entries / 1024);
        t.row_f(
            &label,
            &[s0, s1, Runner::mean_mpki(no_fdp), Runner::mean_mpki(fdp)],
        );
        report.metric(&format!("speedup_{label}_nofdp"), s0);
        report.metric(&format!("speedup_{label}_fdp"), s1);
    }
    report.tables.push(t);
    report
}
