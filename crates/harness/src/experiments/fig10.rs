//! Fig. 10 — Divide-and-Conquer (SN4L+Dis) with and without BTB
//! prefetching, across BTB sizes, history policies and PFC (§VI-E).

use super::baseline;
use crate::report::{Report, Table};
use crate::runner::Runner;
use fdip_bpred::HistoryPolicy;
use fdip_prefetch::PrefetcherKind;
use fdip_sim::CoreConfig;

pub(super) fn run(runner: &Runner) -> Report {
    let mut report = Report::new("fig10");
    let base = baseline(runner);
    let mut t = Table::new(
        "Fig. 10 — SN4L+Dis (±BTB prefetching) speedup over baseline (%) and MPKI",
        &["config", "PFC off %", "PFC on %", "MPKI off", "MPKI on"],
    );
    let btbs: [(&str, usize, bool); 3] = [
        ("2K", 2048, false),
        ("8K", 8192, false),
        ("perfBTB", 8192, true),
    ];
    for (btb_label, entries, perfect) in btbs {
        for policy in [HistoryPolicy::Thr, HistoryPolicy::Ghr3] {
            for (pf_label, pf) in [
                ("SN4L+Dis", PrefetcherKind::SnfourlDis),
                ("SN4L+Dis+BTB", PrefetcherKind::SnfourlDisBtb),
            ] {
                let make = |pfc: bool| CoreConfig {
                    perfect_btb: perfect,
                    ..CoreConfig::fdp()
                        .with_btb_entries(entries)
                        .with_policy(policy)
                        .with_prefetcher(pf)
                        .with_pfc(pfc)
                };
                let off = runner.run_config(&make(false));
                let on = runner.run_config(&make(true));
                let s_off = Runner::speedup_pct(&base, &off);
                let s_on = Runner::speedup_pct(&base, &on);
                let label = format!("{btb_label}/{}/{pf_label}", policy.label());
                t.row_f(
                    &label,
                    &[s_off, s_on, Runner::mean_mpki(&off), Runner::mean_mpki(&on)],
                );
                report.metric(&format!("speedup_{label}_pfc_on"), s_on);
                report.metric(&format!("speedup_{label}_pfc_off"), s_off);
            }
        }
    }
    report.tables.push(t);
    report
}
