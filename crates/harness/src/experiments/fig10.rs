//! Fig. 10 — Divide-and-Conquer (SN4L+Dis) with and without BTB
//! prefetching, across BTB sizes, history policies and PFC (§VI-E).

use super::baseline_cfg;
use crate::report::{Report, Table};
use crate::runner::Runner;
use fdip_bpred::HistoryPolicy;
use fdip_prefetch::PrefetcherKind;
use fdip_sim::CoreConfig;

const BTBS: [(&str, usize, bool); 3] = [
    ("2K", 2048, false),
    ("8K", 8192, false),
    ("perfBTB", 8192, true),
];
const POLICIES: [HistoryPolicy; 2] = [HistoryPolicy::Thr, HistoryPolicy::Ghr3];
const PREFETCHERS: [(&str, PrefetcherKind); 2] = [
    ("SN4L+Dis", PrefetcherKind::SnfourlDis),
    ("SN4L+Dis+BTB", PrefetcherKind::SnfourlDisBtb),
];

pub(super) fn run(runner: &Runner) -> Report {
    let mut report = Report::new("fig10");
    let mut t = Table::new(
        "Fig. 10 — SN4L+Dis (±BTB prefetching) speedup over baseline (%) and MPKI",
        &["config", "PFC off %", "PFC on %", "MPKI off", "MPKI on"],
    );

    // One batch: baseline + (PFC off, PFC on) per BTB × policy × prefetcher.
    let mut cfgs = vec![baseline_cfg()];
    for (_, entries, perfect) in BTBS {
        for policy in POLICIES {
            for (_, pf) in PREFETCHERS {
                for pfc in [false, true] {
                    cfgs.push(CoreConfig {
                        perfect_btb: perfect,
                        ..CoreConfig::fdp()
                            .with_btb_entries(entries)
                            .with_policy(policy)
                            .with_prefetcher(pf)
                            .with_pfc(pfc)
                    });
                }
            }
        }
    }
    let grid = runner.run_configs(&cfgs);
    let base = &grid[0];

    let mut at = 1;
    for (btb_label, _, _) in BTBS {
        for policy in POLICIES {
            for (pf_label, _) in PREFETCHERS {
                let off = &grid[at];
                let on = &grid[at + 1];
                at += 2;
                let s_off = Runner::speedup_pct(base, off);
                let s_on = Runner::speedup_pct(base, on);
                let label = format!("{btb_label}/{}/{pf_label}", policy.label());
                t.row_f(
                    &label,
                    &[s_off, s_on, Runner::mean_mpki(off), Runner::mean_mpki(on)],
                );
                report.metric(&format!("speedup_{label}_pfc_on"), s_on);
                report.metric(&format!("speedup_{label}_pfc_off"), s_off);
            }
        }
    }
    report.tables.push(t);
    report
}
