//! Fig. 9 — ISO-budget comparison: an 8K-entry BTB vs a 4K-entry BTB
//! plus EIP-27KB (similar storage, §VI-D), on top of FDP.

use super::baseline_cfg;
use crate::report::{Report, Table};
use crate::runner::Runner;
use fdip_prefetch::PrefetcherKind;
use fdip_sim::{CoreConfig, SimStats};

pub(super) fn run(runner: &Runner) -> Report {
    let mut report = Report::new("fig9");
    let points: [(&str, CoreConfig); 3] = [
        ("8K-BTB", CoreConfig::fdp().with_btb_entries(8192)),
        (
            "4K-BTB+EIP-27KB",
            CoreConfig::fdp()
                .with_btb_entries(4096)
                .with_prefetcher(PrefetcherKind::Eip27),
        ),
        ("4K-BTB", CoreConfig::fdp().with_btb_entries(4096)),
    ];
    // One batch: baseline + the three budget points.
    let mut cfgs = vec![baseline_cfg()];
    cfgs.extend(points.iter().map(|(_, cfg)| cfg.clone()));
    let grid = runner.run_configs(&cfgs);
    let base = &grid[0];

    let mut t = Table::new(
        "Fig. 9 — ISO-budget comparison (on FDP)",
        &[
            "config",
            "speedup %",
            "branch MPKI",
            "starvation cyc/KI",
            "I$ tag accesses/KI",
        ],
    );
    for (i, (label, _)) in points.iter().enumerate() {
        let stats = &grid[1 + i];
        let speedup = Runner::speedup_pct(base, stats);
        let mpki = Runner::mean_mpki(stats);
        let starv = Runner::mean_of(stats, SimStats::starvation_pki);
        let tags = Runner::mean_of(stats, SimStats::icache_tag_pki);
        t.row_f(label, &[speedup, mpki, starv, tags]);
        let key = label.replace(['-', '+'], "_");
        report.metric(&format!("speedup_{key}"), speedup);
        report.metric(&format!("mpki_{key}"), mpki);
        report.metric(&format!("starv_{key}"), starv);
        report.metric(&format!("tags_{key}"), tags);
    }
    report.tables.push(t);
    report
}
