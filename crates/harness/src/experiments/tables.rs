//! Tables III and IV: structural artifacts computed from the live
//! configuration (no simulation).

use crate::report::{Report, Table};
use crate::runner::Runner;
use fdip_sim::ftq::{ftq_overhead_bytes, FTQ_FIELD_BITS};
use fdip_sim::CoreConfig;

pub(super) fn tab3(_runner: &Runner) -> Report {
    let mut report = Report::new("tab3");
    let mut t = Table::new("Table III — FTQ hardware overhead", &["field", "size"]);
    for (name, bits) in FTQ_FIELD_BITS {
        t.row(vec![name.to_string(), format!("{bits}-bit")]);
    }
    let cfg = CoreConfig::fdp();
    let total = ftq_overhead_bytes(cfg.ftq_entries);
    t.row(vec![
        format!("Total ({}-entry)", cfg.ftq_entries),
        format!("{total} bytes"),
    ]);
    report.metric("total_bytes", total as f64);
    report.metric("hint_bytes", (cfg.ftq_entries * 8 / 8) as f64);
    report.tables.push(t);
    report
}

pub(super) fn tab4(_runner: &Runner) -> Report {
    let mut report = Report::new("tab4");
    let cfg = CoreConfig::fdp();
    let mut t = Table::new("Table IV — common core parameters", &["parameter", "value"]);
    let rows: Vec<(&str, String)> = vec![
        (
            "Fetch width",
            format!("{} instructions/cycle", cfg.fetch_width),
        ),
        ("Decode width", format!("{}", cfg.decode_width)),
        (
            "Prediction bandwidth",
            format!("{} instructions/cycle", cfg.pred_bw),
        ),
        ("FTQ", format!("{} entries (32B blocks)", cfg.ftq_entries)),
        (
            "BTB",
            format!(
                "{} entries, {}-way, {}-cycle",
                cfg.btb.entries, cfg.btb.assoc, cfg.btb_latency
            ),
        ),
        ("History policy", cfg.policy.label().to_string()),
        ("PFC", format!("{}", cfg.pfc)),
        ("ROB", format!("{} entries", cfg.backend.rob_size)),
        ("Retire width", format!("{}", cfg.backend.retire_width)),
        ("L1I", format!("{} KB", cfg.mem.l1i.size_bytes / 1024)),
        ("L1D", format!("{} KB", cfg.mem.l1d.size_bytes / 1024)),
        ("L2", format!("{} KB", cfg.mem.l2.size_bytes / 1024)),
        ("LLC", format!("{} KB", cfg.mem.llc.size_bytes / 1024)),
        ("DRAM latency", format!("{} cycles", cfg.mem.dram_latency)),
    ];
    for (k, v) in rows {
        t.row(vec![k.to_string(), v]);
    }
    report.metric("btb_entries", cfg.btb.entries as f64);
    report.tables.push(t);
    report
}
