//! Client side of the `fdip-serve` sweep service: the wire codec for
//! `CoreConfig`, content-addressed cell keys, a minimal HTTP/1.1 JSON
//! client on `std::net`, and [`RemoteClient`] — the piece `Runner` uses
//! to route a config × workload grid to a daemon instead of the local
//! pool.
//!
//! Everything on the wire is specified in `docs/SERVE.md` and enforced
//! bidirectionally by `tests/serve_doc.rs`. The codec must be *exact*:
//! counters are `u64`, and every float crosses the wire in Rust's
//! shortest-round-trip form, so a grid served from the daemon (or its
//! cache) reproduces a local run byte-for-byte after volatile manifest
//! fields are stripped.

use std::io::{self, BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::time::Duration;

use fdip_bpred::{BtbConfig, GshareConfig, HistoryPolicy, IttageConfig, TageConfig};
use fdip_mem::{CacheConfig, HierarchyConfig};
use fdip_prefetch::PrefetcherKind;
use fdip_program::workload::Workload;
use fdip_sim::{BackendConfig, CoreConfig, DirectionConfig, SimDists, SimStats};
use fdip_telemetry::{Json, SCHEMA_VERSION};

/// Wire path of the grid-execution endpoint.
pub const GRID_PATH: &str = "/v1/grid";
/// Wire path of the liveness endpoint.
pub const HEALTHZ_PATH: &str = "/v1/healthz";
/// Wire path of the per-grid progress endpoint.
pub const PROGRESS_PATH: &str = "/v1/progress";
/// Wire path of the Document 6 serve-manifest endpoint.
pub const TELEMETRY_PATH: &str = "/v1/telemetry";
/// Wire path of the graceful-drain endpoint.
pub const SHUTDOWN_PATH: &str = "/v1/shutdown";
/// Wire path of the Prometheus text exposition endpoint.
pub const METRICS_PATH: &str = "/v1/metrics";
/// Wire path of the structured-log ring endpoint.
pub const LOGS_PATH: &str = "/v1/logs";

/// FNV-1a 64-bit hash — the content-address hash for configs, workload
/// parameters, and cell keys. Chosen because it is tiny, dependency-free,
/// and stable across platforms and releases (the cache key is an on-disk
/// format; see `docs/SERVE.md`).
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Content hash of a config: FNV-1a over its canonical wire form.
///
/// [`config_to_json`] emits fields in a fixed order, so the compact JSON
/// string is canonical and two configs hash equal iff their wire forms
/// are identical.
pub fn config_hash(cfg: &CoreConfig) -> u64 {
    fnv1a64(config_to_json(cfg).to_string().as_bytes())
}

/// Content hash of a workload: FNV-1a over the `Debug` form of its
/// generator parameters (which fully determine the program, including
/// the seed).
pub fn workload_hash(w: &Workload) -> u64 {
    fnv1a64(format!("{:?}", w.params).as_bytes())
}

/// The content address of one grid cell, as 16 lowercase hex digits:
/// FNV-1a over `(config hash, workload hash, seed, instruction budget)`.
/// Two cells share a key iff they would produce identical results.
pub fn cell_key(cfg_hash: u64, wl_hash: u64, seed: u64, warmup: u64, measure: u64) -> String {
    let canon = format!(
        "fdip-cell-v1|cfg={cfg_hash:016x}|wl={wl_hash:016x}|seed={seed}|warmup={warmup}|measure={measure}"
    );
    format!("{:016x}", fnv1a64(canon.as_bytes()))
}

fn direction_to_json(d: &DirectionConfig) -> Json {
    match d {
        DirectionConfig::Tage(t) => Json::obj()
            .with("kind", "tage")
            .with("num_tables", t.num_tables as u64)
            .with("entries_log2", u64::from(t.entries_log2))
            .with("tag_bits", u64::from(t.tag_bits))
            .with("min_hist", u64::from(t.min_hist))
            .with("max_hist", u64::from(t.max_hist))
            .with("bimodal_log2", u64::from(t.bimodal_log2)),
        DirectionConfig::Gshare(g) => Json::obj()
            .with("kind", "gshare")
            .with("table_log2", u64::from(g.table_log2))
            .with("hist_bits", u64::from(g.hist_bits)),
        DirectionConfig::Perfect => Json::obj().with("kind", "perfect"),
    }
}

fn cache_cfg_to_json(c: &CacheConfig) -> Json {
    Json::obj()
        .with("size_bytes", c.size_bytes as u64)
        .with("assoc", c.assoc as u64)
        .with("line_bytes", c.line_bytes as u64)
        .with("hit_latency", c.hit_latency)
        .with("mshrs", c.mshrs as u64)
}

/// Serializes a [`CoreConfig`] into its canonical wire form.
///
/// Field names and nesting are specified in `docs/SERVE.md`; the field
/// *order* is part of the cache-key contract (see [`config_hash`]), so
/// new fields must be appended, never reordered.
pub fn config_to_json(cfg: &CoreConfig) -> Json {
    Json::obj()
        .with("fetch_width", cfg.fetch_width as u64)
        .with("decode_width", cfg.decode_width as u64)
        .with("pred_bw", cfg.pred_bw as u64)
        .with("multi_taken", cfg.multi_taken)
        .with("ftq_entries", cfg.ftq_entries as u64)
        .with(
            "btb",
            Json::obj()
                .with("entries", cfg.btb.entries as u64)
                .with("assoc", cfg.btb.assoc as u64),
        )
        .with("btb_latency", cfg.btb_latency)
        .with("perfect_btb", cfg.perfect_btb)
        .with("perfect_indirect", cfg.perfect_indirect)
        .with("direction", direction_to_json(&cfg.direction))
        .with(
            "ittage",
            Json::obj()
                .with("entries_log2", u64::from(cfg.ittage.entries_log2))
                .with("base_log2", u64::from(cfg.ittage.base_log2))
                .with("tag_bits", u64::from(cfg.ittage.tag_bits))
                .with(
                    "hist_lens",
                    Json::Arr(
                        cfg.ittage
                            .hist_lens
                            .iter()
                            .map(|&l| Json::from(u64::from(l)))
                            .collect(),
                    ),
                ),
        )
        .with("policy", cfg.policy.label())
        .with("pfc", cfg.pfc)
        .with("loop_predictor", cfg.loop_predictor)
        .with("prefetcher", cfg.prefetcher.label())
        .with("prefetch_issue_bw", cfg.prefetch_issue_bw as u64)
        .with("redirect_penalty", cfg.redirect_penalty)
        .with("pfc_redirect_penalty", cfg.pfc_redirect_penalty)
        .with("func_warmup", cfg.func_warmup)
        .with(
            "mem",
            Json::obj()
                .with("l1i", cache_cfg_to_json(&cfg.mem.l1i))
                .with("l1d", cache_cfg_to_json(&cfg.mem.l1d))
                .with("l2", cache_cfg_to_json(&cfg.mem.l2))
                .with("llc", cache_cfg_to_json(&cfg.mem.llc))
                .with("dram_latency", cfg.mem.dram_latency),
        )
        .with(
            "backend",
            Json::obj()
                .with("rob_size", cfg.backend.rob_size as u64)
                .with("decode_queue", cfg.backend.decode_queue as u64)
                .with("dispatch_width", cfg.backend.dispatch_width as u64)
                .with("retire_width", cfg.backend.retire_width as u64)
                .with("frontend_depth", cfg.backend.frontend_depth)
                .with("data_hot_bytes", cfg.backend.data_hot_bytes)
                .with("data_total_bytes", cfg.backend.data_total_bytes)
                .with("data_hot_pct", u64::from(cfg.backend.data_hot_pct)),
        )
}

fn req_u64(v: &Json, key: &str) -> Option<u64> {
    v.get(key)?.as_u64()
}

fn req_usize(v: &Json, key: &str) -> Option<usize> {
    usize::try_from(req_u64(v, key)?).ok()
}

fn req_bool(v: &Json, key: &str) -> Option<bool> {
    v.get(key)?.as_bool()
}

fn direction_from_json(v: &Json) -> Option<DirectionConfig> {
    match v.get("kind")?.as_str()? {
        "tage" => Some(DirectionConfig::Tage(TageConfig {
            num_tables: req_usize(v, "num_tables")?,
            entries_log2: req_u64(v, "entries_log2")? as u32,
            tag_bits: req_u64(v, "tag_bits")? as u32,
            min_hist: req_u64(v, "min_hist")? as u32,
            max_hist: req_u64(v, "max_hist")? as u32,
            bimodal_log2: req_u64(v, "bimodal_log2")? as u32,
        })),
        "gshare" => Some(DirectionConfig::Gshare(GshareConfig {
            table_log2: req_u64(v, "table_log2")? as u32,
            hist_bits: req_u64(v, "hist_bits")? as u32,
        })),
        "perfect" => Some(DirectionConfig::Perfect),
        _ => None,
    }
}

fn cache_cfg_from_json(v: &Json) -> Option<CacheConfig> {
    Some(CacheConfig {
        size_bytes: req_usize(v, "size_bytes")?,
        assoc: req_usize(v, "assoc")?,
        line_bytes: req_usize(v, "line_bytes")?,
        hit_latency: req_u64(v, "hit_latency")?,
        mshrs: req_usize(v, "mshrs")?,
    })
}

fn policy_from_label(label: &str) -> Option<HistoryPolicy> {
    HistoryPolicy::ALL.into_iter().find(|p| p.label() == label)
}

fn prefetcher_from_label(label: &str) -> Option<PrefetcherKind> {
    [
        PrefetcherKind::None,
        PrefetcherKind::NextLine,
        PrefetcherKind::FnlMma,
        PrefetcherKind::Djolt,
        PrefetcherKind::Eip128,
        PrefetcherKind::Eip27,
        PrefetcherKind::SnfourlDis,
        PrefetcherKind::SnfourlDisBtb,
        PrefetcherKind::Rdip,
        PrefetcherKind::Perfect,
    ]
    .into_iter()
    .find(|k| k.label() == label)
}

/// Parses the canonical wire form back into a [`CoreConfig`].
///
/// The exact inverse of [`config_to_json`]; every field is required and
/// enum fields must carry a known label, so a `Some` result always
/// re-serializes to the same canonical string (and therefore the same
/// [`config_hash`]).
pub fn config_from_json(v: &Json) -> Option<CoreConfig> {
    let btb = v.get("btb")?;
    let ittage = v.get("ittage")?;
    let hist_lens_arr = ittage.get("hist_lens")?.as_arr()?;
    if hist_lens_arr.len() != 4 {
        return None;
    }
    let mut hist_lens = [0u32; 4];
    for (slot, l) in hist_lens.iter_mut().zip(hist_lens_arr) {
        *slot = l.as_u64()? as u32;
    }
    let mem = v.get("mem")?;
    let backend = v.get("backend")?;
    Some(CoreConfig {
        fetch_width: req_usize(v, "fetch_width")?,
        decode_width: req_usize(v, "decode_width")?,
        pred_bw: req_usize(v, "pred_bw")?,
        multi_taken: req_bool(v, "multi_taken")?,
        ftq_entries: req_usize(v, "ftq_entries")?,
        btb: BtbConfig {
            entries: req_usize(btb, "entries")?,
            assoc: req_usize(btb, "assoc")?,
        },
        btb_latency: req_u64(v, "btb_latency")?,
        perfect_btb: req_bool(v, "perfect_btb")?,
        perfect_indirect: req_bool(v, "perfect_indirect")?,
        direction: direction_from_json(v.get("direction")?)?,
        ittage: IttageConfig {
            entries_log2: req_u64(ittage, "entries_log2")? as u32,
            base_log2: req_u64(ittage, "base_log2")? as u32,
            tag_bits: req_u64(ittage, "tag_bits")? as u32,
            hist_lens,
        },
        policy: policy_from_label(v.get("policy")?.as_str()?)?,
        pfc: req_bool(v, "pfc")?,
        loop_predictor: req_bool(v, "loop_predictor")?,
        prefetcher: prefetcher_from_label(v.get("prefetcher")?.as_str()?)?,
        prefetch_issue_bw: req_usize(v, "prefetch_issue_bw")?,
        redirect_penalty: req_u64(v, "redirect_penalty")?,
        pfc_redirect_penalty: req_u64(v, "pfc_redirect_penalty")?,
        func_warmup: req_u64(v, "func_warmup")?,
        mem: HierarchyConfig {
            l1i: cache_cfg_from_json(mem.get("l1i")?)?,
            l1d: cache_cfg_from_json(mem.get("l1d")?)?,
            l2: cache_cfg_from_json(mem.get("l2")?)?,
            llc: cache_cfg_from_json(mem.get("llc")?)?,
            dram_latency: req_u64(mem, "dram_latency")?,
        },
        backend: BackendConfig {
            rob_size: req_usize(backend, "rob_size")?,
            decode_queue: req_usize(backend, "decode_queue")?,
            dispatch_width: req_usize(backend, "dispatch_width")?,
            retire_width: req_usize(backend, "retire_width")?,
            frontend_depth: req_u64(backend, "frontend_depth")?,
            data_hot_bytes: req_u64(backend, "data_hot_bytes")?,
            data_total_bytes: req_u64(backend, "data_total_bytes")?,
            data_hot_pct: req_u64(backend, "data_hot_pct")? as u8,
        },
    })
}

/// Builds the `POST /v1/grid` request body for a config × workload grid.
pub fn grid_request(
    client: &str,
    suite: &str,
    warmup: u64,
    measure: u64,
    cfgs: &[CoreConfig],
) -> Json {
    Json::obj()
        .with("schema_version", SCHEMA_VERSION)
        .with("client", client)
        .with("suite", suite)
        .with("warmup_instrs", warmup)
        .with("measure_instrs", measure)
        .with(
            "configs",
            Json::Arr(cfgs.iter().map(config_to_json).collect()),
        )
}

/// Sends one HTTP/1.1 request with an optional JSON body to `addr` and
/// returns `(status code, parsed JSON body)`.
///
/// The exchange is deliberately minimal: `Connection: close`, a
/// `Content-Length` body in each direction, no keep-alive, no chunking.
/// Large grids can simulate for a while, so the read timeout is generous
/// (10 minutes); connect/write failures surface immediately.
pub fn http_json_request(
    addr: &str,
    method: &str,
    path: &str,
    body: Option<&Json>,
) -> io::Result<(u16, Json)> {
    let (status, text) = http_text_request(addr, method, path, body)?;
    let json = Json::parse(&text).map_err(|e| io::Error::other(format!("bad json body: {e}")))?;
    Ok((status, json))
}

/// Like [`http_json_request`] but returns the raw body text — for
/// endpoints whose responses are not JSON (`/v1/metrics` serves
/// Prometheus text exposition).
pub fn http_text_request(
    addr: &str,
    method: &str,
    path: &str,
    body: Option<&Json>,
) -> io::Result<(u16, String)> {
    let stream = TcpStream::connect(addr)?;
    stream.set_read_timeout(Some(Duration::from_secs(600)))?;
    stream.set_write_timeout(Some(Duration::from_secs(60)))?;
    let payload = body.map(Json::to_string).unwrap_or_default();
    let mut req = format!(
        "{method} {path} HTTP/1.1\r\nHost: {addr}\r\nConnection: close\r\n\
         Content-Type: application/json\r\nContent-Length: {}\r\n\r\n",
        payload.len()
    );
    req.push_str(&payload);
    let mut reader = BufReader::new(stream);
    reader.get_mut().write_all(req.as_bytes())?;

    let mut status_line = String::new();
    reader.read_line(&mut status_line)?;
    let status: u16 = status_line
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| io::Error::other(format!("bad status line {status_line:?}")))?;
    let mut content_length: Option<usize> = None;
    loop {
        let mut line = String::new();
        reader.read_line(&mut line)?;
        let line = line.trim_end();
        if line.is_empty() {
            break;
        }
        if let Some((name, value)) = line.split_once(':') {
            if name.eq_ignore_ascii_case("content-length") {
                content_length = value.trim().parse().ok();
            }
        }
    }
    let body = match content_length {
        Some(n) => {
            let mut buf = vec![0u8; n];
            reader.read_exact(&mut buf)?;
            buf
        }
        None => {
            let mut buf = Vec::new();
            reader.read_to_end(&mut buf)?;
            buf
        }
    };
    let text = String::from_utf8(body).map_err(|e| io::Error::other(format!("bad utf8: {e}")))?;
    Ok((status, text))
}

/// Extracts `error.code` from an error response body, for messages.
fn error_code(body: &Json) -> &str {
    body.get("error")
        .and_then(|e| e.get("code"))
        .and_then(Json::as_str)
        .unwrap_or("unknown")
}

/// A connection-per-request client for one `fdip-serve` daemon.
#[derive(Clone, Debug)]
pub struct RemoteClient {
    addr: String,
    client: String,
}

impl RemoteClient {
    /// Creates a client for the daemon at `addr` (`host:port`),
    /// identifying itself as `client` in per-client serve telemetry.
    pub fn new(addr: &str, client: &str) -> RemoteClient {
        RemoteClient {
            addr: addr.to_string(),
            client: client.to_string(),
        }
    }

    /// The daemon address this client talks to.
    pub fn addr(&self) -> &str {
        &self.addr
    }

    /// Submits a grid and returns per-config, suite-ordered results —
    /// the same shape `Runner::run_configs_detailed` produces locally.
    ///
    /// `workloads` is the expected suite length; a response with any
    /// other cell count is rejected as a protocol error.
    pub fn run_grid(
        &self,
        suite: &str,
        warmup: u64,
        measure: u64,
        cfgs: &[CoreConfig],
        workloads: usize,
    ) -> io::Result<Vec<Vec<(SimStats, SimDists)>>> {
        // Client-side scrape surface: the process-wide registry, since a
        // client outlives any single daemon connection.
        let submitted = |outcome: &str| {
            fdip_obs::metrics::global()
                .counter_with(
                    "fdip_client_grid_requests_total",
                    "Grid submissions sent by this process, by HTTP-level outcome",
                    &[("outcome", outcome)],
                )
                .inc();
        };
        let request = grid_request(&self.client, suite, warmup, measure, cfgs);
        let (status, body) = match http_json_request(&self.addr, "POST", GRID_PATH, Some(&request))
        {
            Ok(reply) => reply,
            Err(e) => {
                submitted("io_error");
                return Err(e);
            }
        };
        if status != 200 {
            submitted("http_error");
            return Err(io::Error::other(format!(
                "grid request failed: HTTP {status} ({})",
                error_code(&body)
            )));
        }
        submitted("ok");
        let cells = body
            .get("cells")
            .and_then(Json::as_arr)
            .ok_or_else(|| io::Error::other("response has no cells array"))?;
        if cells.len() != cfgs.len() * workloads {
            return Err(io::Error::other(format!(
                "expected {} cells, got {}",
                cfgs.len() * workloads,
                cells.len()
            )));
        }
        fdip_obs::metrics::global()
            .counter(
                "fdip_client_cells_received_total",
                "Grid cells received by this process from fdip-serve daemons",
            )
            .add(cells.len() as u64);
        fdip_obs::log::debug(
            "harness",
            "grid served",
            &[
                ("addr", self.addr.as_str().into()),
                ("suite", suite.into()),
                ("cells", (cells.len() as u64).into()),
            ],
        );
        let mut parsed = Vec::with_capacity(cells.len());
        for cell in cells {
            let stats = cell
                .get("stats")
                .and_then(SimStats::from_json)
                .ok_or_else(|| io::Error::other("cell has no parseable stats"))?;
            let dists = cell
                .get("dists")
                .and_then(SimDists::from_json)
                .ok_or_else(|| io::Error::other("cell has no parseable dists"))?;
            parsed.push((stats, dists));
        }
        let mut flat = parsed.into_iter();
        Ok(cfgs
            .iter()
            .map(|_| (&mut flat).take(workloads).collect())
            .collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn config_codec_round_trips_every_field() {
        // A config that differs from every default, so a field that is
        // dropped, misread, or defaulted breaks the Debug comparison.
        let cfg = CoreConfig {
            fetch_width: 8,
            decode_width: 7,
            pred_bw: 18,
            multi_taken: true,
            ftq_entries: 12,
            btb: BtbConfig {
                entries: 1024,
                assoc: 8,
            },
            btb_latency: 3,
            perfect_btb: true,
            perfect_indirect: true,
            direction: DirectionConfig::Gshare(GshareConfig {
                table_log2: 14,
                hist_bits: 13,
            }),
            policy: HistoryPolicy::Ghr2,
            pfc: false,
            loop_predictor: true,
            prefetcher: PrefetcherKind::SnfourlDisBtb,
            prefetch_issue_bw: 4,
            redirect_penalty: 2,
            pfc_redirect_penalty: 3,
            func_warmup: 12_345,
            ..CoreConfig::default()
        };
        let round = config_from_json(&config_to_json(&cfg)).expect("parses");
        assert_eq!(format!("{round:?}"), format!("{cfg:?}"));
        assert_eq!(config_hash(&round), config_hash(&cfg));
        // And through the parser, as the server receives it.
        let text = config_to_json(&cfg).to_string();
        let reparsed = config_from_json(&Json::parse(&text).unwrap()).expect("parses");
        assert_eq!(format!("{reparsed:?}"), format!("{cfg:?}"));
    }

    #[test]
    fn config_codec_round_trips_tage_and_perfect_direction() {
        for direction in [
            DirectionConfig::Tage(TageConfig::kb18()),
            DirectionConfig::Perfect,
        ] {
            let cfg = CoreConfig {
                direction,
                ..CoreConfig::default()
            };
            let round = config_from_json(&config_to_json(&cfg)).expect("parses");
            assert_eq!(format!("{round:?}"), format!("{cfg:?}"));
        }
    }

    #[test]
    fn every_prefetcher_and_policy_label_round_trips() {
        for kind in [
            PrefetcherKind::None,
            PrefetcherKind::NextLine,
            PrefetcherKind::FnlMma,
            PrefetcherKind::Djolt,
            PrefetcherKind::Eip128,
            PrefetcherKind::Eip27,
            PrefetcherKind::SnfourlDis,
            PrefetcherKind::SnfourlDisBtb,
            PrefetcherKind::Rdip,
            PrefetcherKind::Perfect,
        ] {
            assert_eq!(prefetcher_from_label(kind.label()), Some(kind));
        }
        for policy in HistoryPolicy::ALL {
            assert_eq!(policy_from_label(policy.label()), Some(policy));
        }
        assert_eq!(prefetcher_from_label("bogus"), None);
        assert_eq!(policy_from_label("bogus"), None);
    }

    #[test]
    fn config_hash_separates_configs_and_is_stable() {
        let a = CoreConfig::fdp();
        let b = CoreConfig::no_fdp();
        assert_ne!(config_hash(&a), config_hash(&b));
        assert_eq!(config_hash(&a), config_hash(&CoreConfig::fdp()));
        // FNV-1a reference vector: hash of the empty string.
        assert_eq!(fnv1a64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a64(b"a"), 0xaf63_dc4c_8601_ec8c);
    }

    #[test]
    fn cell_keys_distinguish_every_component() {
        let base = cell_key(1, 2, 3, 4, 5);
        assert_eq!(base.len(), 16);
        assert_ne!(base, cell_key(9, 2, 3, 4, 5));
        assert_ne!(base, cell_key(1, 9, 3, 4, 5));
        assert_ne!(base, cell_key(1, 2, 9, 4, 5));
        assert_ne!(base, cell_key(1, 2, 3, 9, 5));
        assert_ne!(base, cell_key(1, 2, 3, 4, 9));
        assert_eq!(base, cell_key(1, 2, 3, 4, 5));
    }

    #[test]
    fn malformed_configs_are_rejected() {
        let good = config_to_json(&CoreConfig::fdp());
        assert!(config_from_json(&good).is_some());
        assert!(config_from_json(&good.clone().with("policy", "nope")).is_none());
        assert!(config_from_json(&good.clone().with("pfc", Json::Null)).is_none());
        assert!(config_from_json(&Json::obj()).is_none());
    }
}
