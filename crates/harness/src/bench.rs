//! Simulator-throughput benchmark: how fast does the simulator itself
//! run, in simulated instructions (and cycles) per wall-clock second?
//!
//! The paper-scale experiments are bounded by simulation throughput —
//! every config × workload sweep point costs one full run — so this
//! module times the two phases of a run separately:
//!
//! * **setup**: `Simulator::new`, dominated by the functional BTB
//!   warm-up and the LLC pre-warm;
//! * **run**: the cycle loop proper, reported as
//!   `instrs_per_sec` / `cycles_per_sec`.
//!
//! Each workload is benchmarked `iters` times and the fastest iteration
//! is kept (standard best-of-N to suppress scheduler noise). Results are
//! emitted as the versioned `BENCH_core.json` document described in
//! `docs/METRICS.md`, optionally embedding a previously recorded run as
//! the comparison baseline so the performance trajectory is
//! machine-checkable PR over PR.

use std::time::Instant;

use fdip_program::workload::{self, Workload};
use fdip_sim::{CoreConfig, Simulator};
use fdip_telemetry::{Json, RunManifest, ToJson, SCHEMA_VERSION};

/// Best-of-N timing for one workload.
#[derive(Clone, Debug)]
pub struct BenchWorkload {
    /// Workload name (e.g. `server_a`).
    pub name: String,
    /// Workload family (`server`/`client`/`spec`).
    pub family: String,
    /// Seconds spent in `Simulator::new` (functional warm-up, prewarm).
    pub setup_seconds: f64,
    /// Seconds spent in the timed cycle loop.
    pub run_seconds: f64,
    /// Instructions retired by the timed loop.
    pub instrs: u64,
    /// Cycles simulated by the timed loop.
    pub cycles: u64,
}

impl BenchWorkload {
    /// Simulated instructions retired per wall-clock second.
    pub fn instrs_per_sec(&self) -> f64 {
        per_second(self.instrs, self.run_seconds)
    }

    /// Simulated cycles per wall-clock second.
    pub fn cycles_per_sec(&self) -> f64 {
        per_second(self.cycles, self.run_seconds)
    }
}

impl ToJson for BenchWorkload {
    fn to_json(&self) -> Json {
        Json::obj()
            .with("name", self.name.as_str())
            .with("family", self.family.as_str())
            .with("setup_seconds", self.setup_seconds)
            .with("run_seconds", self.run_seconds)
            .with("instrs", self.instrs)
            .with("cycles", self.cycles)
            .with("instrs_per_sec", self.instrs_per_sec())
            .with("cycles_per_sec", self.cycles_per_sec())
    }
}

/// The aggregate throughput of a previously recorded bench run, embedded
/// for before/after comparison.
#[derive(Clone, Debug)]
pub struct BenchBaseline {
    /// Aggregate `instrs_per_sec` of the baseline run.
    pub instrs_per_sec: f64,
    /// Aggregate `cycles_per_sec` of the baseline run.
    pub cycles_per_sec: f64,
    /// `git_revision` recorded by the baseline run.
    pub git_revision: String,
}

impl BenchBaseline {
    /// Extracts the baseline block from a previously written bench
    /// document (the `bench.aggregate` numbers plus the manifest
    /// revision). Returns `None` when the document lacks them.
    pub fn from_doc(doc: &Json) -> Option<BenchBaseline> {
        let agg = doc.get("bench")?.get("aggregate")?;
        Some(BenchBaseline {
            instrs_per_sec: agg.get("instrs_per_sec")?.as_f64()?,
            cycles_per_sec: agg.get("cycles_per_sec")?.as_f64()?,
            git_revision: doc
                .get("manifest")
                .and_then(|m| m.get("git_revision"))
                .and_then(Json::as_str)
                .unwrap_or("unknown")
                .to_string(),
        })
    }
}

impl ToJson for BenchBaseline {
    fn to_json(&self) -> Json {
        Json::obj()
            .with("instrs_per_sec", self.instrs_per_sec)
            .with("cycles_per_sec", self.cycles_per_sec)
            .with("git_revision", self.git_revision.as_str())
    }
}

/// A complete benchmark run over a workload suite.
#[derive(Clone, Debug)]
pub struct BenchResult {
    /// Provenance of this run.
    pub manifest: RunManifest,
    /// Iterations per workload (best-of-N).
    pub iters: u32,
    /// Per-workload best-iteration timings, in suite order.
    pub workloads: Vec<BenchWorkload>,
    /// A previously recorded run to compare against, if any.
    pub baseline: Option<BenchBaseline>,
}

impl BenchResult {
    /// Aggregate instructions per second: total instructions divided by
    /// total run seconds (so slow workloads weigh in proportionally).
    pub fn instrs_per_sec(&self) -> f64 {
        let instrs: u64 = self.workloads.iter().map(|w| w.instrs).sum();
        per_second(instrs, self.run_seconds())
    }

    /// Aggregate cycles per second.
    pub fn cycles_per_sec(&self) -> f64 {
        let cycles: u64 = self.workloads.iter().map(|w| w.cycles).sum();
        per_second(cycles, self.run_seconds())
    }

    /// Total best-iteration cycle-loop seconds across the suite.
    pub fn run_seconds(&self) -> f64 {
        self.workloads.iter().map(|w| w.run_seconds).sum()
    }

    /// Total best-iteration setup seconds across the suite.
    pub fn setup_seconds(&self) -> f64 {
        self.workloads.iter().map(|w| w.setup_seconds).sum()
    }

    /// This run's aggregate `instrs_per_sec` over the baseline's
    /// (`0.0` without a baseline).
    pub fn speedup_vs_baseline(&self) -> f64 {
        match &self.baseline {
            Some(b) if b.instrs_per_sec > 0.0 => self.instrs_per_sec() / b.instrs_per_sec,
            _ => 0.0,
        }
    }

    /// The `bench` block of the document.
    fn bench_json(&self) -> Json {
        let mut bench = Json::obj()
            .with("iters", self.iters)
            .with(
                "workloads",
                Json::Arr(self.workloads.iter().map(ToJson::to_json).collect()),
            )
            .with(
                "aggregate",
                Json::obj()
                    .with("instrs_per_sec", self.instrs_per_sec())
                    .with("cycles_per_sec", self.cycles_per_sec())
                    .with("setup_seconds", self.setup_seconds())
                    .with("run_seconds", self.run_seconds()),
            );
        if let Some(b) = &self.baseline {
            bench.set("baseline", b.to_json());
            bench.set("speedup_vs_baseline", self.speedup_vs_baseline());
        }
        bench
    }

    /// Writes the pretty-printed JSON document to `path`.
    ///
    /// # Errors
    ///
    /// Returns the I/O error if the file cannot be created or written.
    pub fn write_json_file(&self, path: &std::path::Path) -> std::io::Result<()> {
        std::fs::write(path, self.to_json().to_string_pretty())
    }
}

impl ToJson for BenchResult {
    /// Serializes as `{schema_version, manifest, bench}` (Document 3 of
    /// `docs/METRICS.md`).
    fn to_json(&self) -> Json {
        Json::obj()
            .with("schema_version", SCHEMA_VERSION)
            .with("manifest", self.manifest.to_json())
            .with("bench", self.bench_json())
    }
}

fn per_second(count: u64, seconds: f64) -> f64 {
    if seconds > 0.0 {
        count as f64 / seconds
    } else {
        0.0
    }
}

/// Times one `(config, program)` pair once: returns
/// `(setup_seconds, run_seconds, instrs, cycles)`.
fn time_once(
    cfg: &CoreConfig,
    program: &fdip_program::Program,
    total: u64,
) -> (f64, f64, u64, u64) {
    let t0 = Instant::now();
    // The fixed seed every harness entry point uses, so benchmarked runs
    // simulate exactly the workload the correctness suite checks.
    let mut sim = Simulator::new(cfg.clone(), program, 0xf0cced);
    let setup = t0.elapsed().as_secs_f64();
    let t1 = Instant::now();
    sim.run(0, total);
    let run = t1.elapsed().as_secs_f64();
    let end = sim.collect();
    (setup, run, end.retired, end.cycles)
}

/// Benchmarks `cfg` over `workloads`: best-of-`iters` per workload.
pub fn run_bench(
    cfg: &CoreConfig,
    workloads: &[Workload],
    suite_name: &str,
    total_instrs: u64,
    iters: u32,
) -> BenchResult {
    let iters = iters.max(1);
    let mut manifest = RunManifest::new("fdip-bench", suite_name, 0, total_instrs, workloads.len());
    let t0 = Instant::now();
    let results = workloads
        .iter()
        .map(|w| {
            let program = w.build();
            let best = (0..iters)
                .map(|_| time_once(cfg, &program, total_instrs))
                .min_by(|a, b| (a.0 + a.1).total_cmp(&(b.0 + b.1)))
                .expect("at least one iteration");
            BenchWorkload {
                name: w.name.clone(),
                family: w.family.to_string(),
                setup_seconds: best.0,
                run_seconds: best.1,
                instrs: best.2,
                cycles: best.3,
            }
        })
        .collect();
    manifest.wall_seconds = t0.elapsed().as_secs_f64();
    BenchResult {
        manifest,
        iters,
        workloads: results,
        baseline: None,
    }
}

/// Benchmarks the quick suite at a small scale (tests and smoke runs).
pub fn quick_bench(total_instrs: u64, iters: u32) -> BenchResult {
    run_bench(
        &CoreConfig::fdp(),
        &workload::quick_suite(),
        "quick",
        total_instrs,
        iters,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_result(with_baseline: bool) -> BenchResult {
        BenchResult {
            manifest: RunManifest::new("fdip-bench", "quick", 0, 1000, 1),
            iters: 2,
            workloads: vec![BenchWorkload {
                name: "server_a".to_string(),
                family: "server".to_string(),
                setup_seconds: 0.5,
                run_seconds: 2.0,
                instrs: 1000,
                cycles: 500,
            }],
            baseline: with_baseline.then(|| BenchBaseline {
                instrs_per_sec: 250.0,
                cycles_per_sec: 125.0,
                git_revision: "abc123".to_string(),
            }),
        }
    }

    #[test]
    fn throughput_is_count_over_seconds() {
        let r = sample_result(false);
        assert_eq!(r.workloads[0].instrs_per_sec(), 500.0);
        assert_eq!(r.workloads[0].cycles_per_sec(), 250.0);
        assert_eq!(r.instrs_per_sec(), 500.0);
        assert_eq!(r.setup_seconds(), 0.5);
        // No baseline -> no speedup claim.
        assert_eq!(r.speedup_vs_baseline(), 0.0);
        assert!(r.to_json().get("bench").unwrap().get("baseline").is_none());
    }

    #[test]
    fn baseline_round_trips_through_the_document() {
        let r = sample_result(true);
        assert_eq!(r.speedup_vs_baseline(), 2.0);
        let doc = r.to_json();
        let bench = doc.get("bench").unwrap();
        assert_eq!(
            bench
                .get("speedup_vs_baseline")
                .and_then(Json::as_f64)
                .unwrap(),
            2.0
        );
        // A written document can seed the next run's baseline.
        let parsed = Json::parse(&doc.to_string_pretty()).unwrap();
        let b = BenchBaseline::from_doc(&parsed).expect("baseline extractable");
        assert_eq!(b.instrs_per_sec, 500.0);
    }

    #[test]
    fn zero_seconds_does_not_divide_by_zero() {
        let mut r = sample_result(false);
        r.workloads[0].run_seconds = 0.0;
        assert_eq!(r.instrs_per_sec(), 0.0);
        assert_eq!(r.workloads[0].cycles_per_sec(), 0.0);
    }

    #[test]
    fn tiny_bench_produces_plausible_numbers() {
        let r = quick_bench(2_000, 1);
        assert_eq!(r.workloads.len(), 3);
        for w in &r.workloads {
            assert!(w.instrs >= 2_000, "{}", w.instrs);
            assert!(w.cycles > 0);
            assert!(w.instrs_per_sec() > 0.0);
        }
        assert!(r.instrs_per_sec() > 0.0);
        assert_eq!(
            r.to_json()
                .get("bench")
                .and_then(|b| b.get("workloads"))
                .and_then(Json::as_arr)
                .map(<[Json]>::len),
            Some(3)
        );
    }
}
