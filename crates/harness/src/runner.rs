//! Workload-suite runner: builds the synthetic programs once, then runs
//! `CoreConfig`s over every workload on the shared bounded job pool
//! (`fdip-exec`) and aggregates the way the paper does (geometric-mean
//! IPC speedups, arithmetic-mean MPKI).
//!
//! Every simulation goes through [`Runner::run_configs_detailed`]: the
//! whole config × workload grid is flattened into **one** batch so
//! distinct configs overlap on the pool, and results are collected into
//! indexed slots — suite order, never completion order — which keeps
//! sweeps deterministic for any `FDIP_JOBS` setting.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use crate::remote::RemoteClient;
use crate::suite::{SuiteResult, WorkloadResult};
use fdip_exec::Pool;
use fdip_program::workload::{self, Workload};
use fdip_program::Program;
use fdip_sim::{run_workload_job, CoreConfig, SimDists, SimStats};
use fdip_telemetry::{RunManifest, ToJson};

/// Geometric mean of a slice of positive values.
pub fn geomean(values: &[f64]) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    let log_sum: f64 = values.iter().map(|v| v.max(1e-12).ln()).sum();
    (log_sum / values.len() as f64).exp()
}

/// One suite entry: a built program plus the labels it reports under.
struct SuiteEntry {
    name: String,
    family: String,
    program: Arc<Program>,
}

/// The evaluation driver: a built workload suite plus run lengths.
pub struct Runner {
    workloads: Vec<SuiteEntry>,
    warmup: u64,
    measure: u64,
    suite_name: String,
    /// Private pool override; `None` uses the process-wide
    /// [`fdip_exec::global`] pool (sized by `FDIP_JOBS`/`--jobs`).
    pool: Option<Arc<Pool>>,
    /// Optional `fdip-serve` daemon; grids for the named `quick`/`full`
    /// suites are routed there instead of the local pool.
    remote: Option<RemoteClient>,
    /// Set after the first failed remote grid: later grids go straight
    /// to local execution instead of re-trying a dead daemon.
    remote_failed: AtomicBool,
}

impl Runner {
    /// Builds a runner over the given workloads.
    pub fn new(workloads: Vec<Workload>, warmup: u64, measure: u64) -> Self {
        let built = workloads
            .into_iter()
            .map(|w| SuiteEntry {
                name: w.name.clone(),
                family: w.family.to_string(),
                program: Arc::new(w.build()),
            })
            .collect();
        Runner::from_entries(built, warmup, measure)
    }

    /// Builds a runner over already-built programs (the fuzz harness'
    /// entry point: its programs come from a generator, not the named
    /// workload families). Results report under family `generated`.
    pub fn from_programs(programs: Vec<(String, Arc<Program>)>, warmup: u64, measure: u64) -> Self {
        let entries = programs
            .into_iter()
            .map(|(name, program)| SuiteEntry {
                name,
                family: "generated".to_string(),
                program,
            })
            .collect();
        Runner::from_entries(entries, warmup, measure).with_suite_name("generated")
    }

    fn from_entries(workloads: Vec<SuiteEntry>, warmup: u64, measure: u64) -> Self {
        Runner {
            workloads,
            warmup,
            measure,
            suite_name: "custom".to_string(),
            pool: None,
            remote: None,
            remote_failed: AtomicBool::new(false),
        }
    }

    /// Names the suite (used in emitted run manifests).
    #[must_use]
    pub fn with_suite_name(mut self, name: &str) -> Self {
        self.suite_name = name.to_string();
        self
    }

    /// Routes this runner's simulations through a private pool instead of
    /// the global one (tests pin the worker count this way).
    #[must_use]
    pub fn with_pool(mut self, pool: Arc<Pool>) -> Self {
        self.pool = Some(pool);
        self
    }

    /// The pool executing this runner's simulation jobs.
    pub fn pool(&self) -> &Pool {
        self.pool.as_deref().unwrap_or_else(|| fdip_exec::global())
    }

    /// Routes grids for the named `quick`/`full` suites to the
    /// `fdip-serve` daemon at `addr`, identifying as `client` in its
    /// per-client telemetry. Custom suites (which the daemon cannot
    /// rebuild by name) and any daemon failure fall back to local
    /// execution; results are byte-identical either way, because the
    /// daemon runs the same deterministic simulation and its wire codec
    /// round-trips every counter and float exactly.
    #[must_use]
    pub fn with_server(mut self, addr: &str, client: &str) -> Self {
        self.remote = Some(RemoteClient::new(addr, client));
        self
    }

    /// The remote grid path: `Some(grid)` if the whole sweep was served,
    /// `None` if the caller must run locally.
    fn try_remote(&self, cfgs: &[CoreConfig]) -> Option<Vec<Vec<(SimStats, SimDists)>>> {
        let remote = self.remote.as_ref()?;
        if !matches!(self.suite_name.as_str(), "quick" | "full") {
            return None;
        }
        if self.remote_failed.load(Ordering::Acquire) {
            return None;
        }
        match remote.run_grid(
            &self.suite_name,
            self.warmup,
            self.measure,
            cfgs,
            self.len(),
        ) {
            Ok(grid) => Some(grid),
            Err(e) => {
                if !self.remote_failed.swap(true, Ordering::AcqRel) {
                    fdip_obs::metrics::global()
                        .counter(
                            "fdip_client_fallbacks_total",
                            "Sweeps that fell back to local execution after a daemon error",
                        )
                        .inc();
                    fdip_obs::log::warn(
                        "harness",
                        "fdip-serve unavailable; falling back to local execution",
                        &[
                            ("addr", remote.addr().into()),
                            ("error", e.to_string().as_str().into()),
                        ],
                    );
                }
                None
            }
        }
    }

    /// Builds the default runner from the environment:
    /// `FDIP_SUITE` (`full`/`quick`), `FDIP_WARMUP`, `FDIP_INSTRS`.
    pub fn from_env() -> Self {
        let (suite, suite_name) = match std::env::var("FDIP_SUITE").as_deref() {
            Ok("quick") => (workload::quick_suite(), "quick"),
            _ => (workload::suite(), "full"),
        };
        let warmup = std::env::var("FDIP_WARMUP")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(50_000);
        let measure = std::env::var("FDIP_INSTRS")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(200_000);
        Runner::new(suite, warmup, measure).with_suite_name(suite_name)
    }

    /// A small fixed-size runner for tests and benches.
    pub fn quick(warmup: u64, measure: u64) -> Self {
        Runner::new(workload::quick_suite(), warmup, measure).with_suite_name("quick")
    }

    /// Warm-up instructions per workload.
    pub fn warmup(&self) -> u64 {
        self.warmup
    }

    /// Measured instructions per workload.
    pub fn measure(&self) -> u64 {
        self.measure
    }

    /// The suite name (`quick`/`full`/`custom`).
    pub fn suite_name(&self) -> &str {
        &self.suite_name
    }

    /// Workload names, in run order.
    pub fn names(&self) -> Vec<&str> {
        self.workloads.iter().map(|e| e.name.as_str()).collect()
    }

    /// Number of workloads.
    pub fn len(&self) -> usize {
        self.workloads.len()
    }

    /// Returns `true` if the suite is empty.
    pub fn is_empty(&self) -> bool {
        self.workloads.is_empty()
    }

    /// Runs `cfg` over every workload on the pool and returns
    /// per-workload statistics in suite order.
    pub fn run_config(&self, cfg: &CoreConfig) -> Vec<SimStats> {
        self.run_config_detailed(cfg)
            .into_iter()
            .map(|(s, _)| s)
            .collect()
    }

    /// Like [`Runner::run_config`], but also returns each workload's
    /// distribution telemetry.
    pub fn run_config_detailed(&self, cfg: &CoreConfig) -> Vec<(SimStats, SimDists)> {
        self.run_configs_detailed(std::slice::from_ref(cfg))
            .pop()
            .unwrap_or_default()
    }

    /// Runs a whole config sweep: every `(config, workload)` pair becomes
    /// one pool job, submitted as a single batch so the grid saturates
    /// the pool. Returns one suite-ordered stats vector per config, in
    /// `cfgs` order.
    pub fn run_configs(&self, cfgs: &[CoreConfig]) -> Vec<Vec<SimStats>> {
        self.run_configs_detailed(cfgs)
            .into_iter()
            .map(|per_cfg| per_cfg.into_iter().map(|(s, _)| s).collect())
            .collect()
    }

    /// Like [`Runner::run_configs`], but with distribution telemetry.
    pub fn run_configs_detailed(&self, cfgs: &[CoreConfig]) -> Vec<Vec<(SimStats, SimDists)>> {
        if cfgs.is_empty() {
            return Vec::new();
        }
        if let Some(grid) = self.try_remote(cfgs) {
            return grid;
        }
        let (warmup, measure) = (self.warmup, self.measure);
        let mut jobs = Vec::with_capacity(cfgs.len() * self.workloads.len());
        for cfg in cfgs {
            for entry in &self.workloads {
                let cfg = cfg.clone();
                let program = Arc::clone(&entry.program);
                jobs.push(move || run_workload_job(cfg, program, warmup, measure));
            }
        }
        let mut flat = self.pool().run_batch(jobs).into_iter();
        cfgs.iter()
            .map(|_| (&mut flat).take(self.workloads.len()).collect())
            .collect()
    }

    /// Runs `cfg` over the whole suite and packages the results (with a
    /// stamped [`RunManifest`], including pool telemetry) for JSON
    /// emission.
    pub fn run_suite(&self, cfg: &CoreConfig, tool: &str) -> SuiteResult {
        let t0 = std::time::Instant::now();
        let results = self.run_config_detailed(cfg);
        let workloads = self
            .workloads
            .iter()
            .zip(results)
            .map(|(entry, (stats, dists))| WorkloadResult {
                name: entry.name.clone(),
                family: entry.family.clone(),
                stats,
                dists,
            })
            .collect();
        let mut manifest = RunManifest::new(
            tool,
            &self.suite_name,
            self.warmup,
            self.measure,
            self.workloads.len(),
        );
        manifest.wall_seconds = t0.elapsed().as_secs_f64();
        manifest.pool = Some(self.pool().stats().to_json());
        SuiteResult {
            manifest,
            workloads,
        }
    }

    /// Geometric-mean IPC speedup of `other` over `base`, in percent
    /// (the paper's headline aggregation).
    pub fn speedup_pct(base: &[SimStats], other: &[SimStats]) -> f64 {
        assert_eq!(base.len(), other.len());
        let ratios: Vec<f64> = base
            .iter()
            .zip(other)
            .map(|(b, o)| o.ipc() / b.ipc())
            .collect();
        100.0 * (geomean(&ratios) - 1.0)
    }

    /// Arithmetic-mean branch MPKI (the paper's MPKI aggregation).
    pub fn mean_mpki(stats: &[SimStats]) -> f64 {
        if stats.is_empty() {
            return 0.0;
        }
        stats.iter().map(SimStats::branch_mpki).sum::<f64>() / stats.len() as f64
    }

    /// Arithmetic mean of an arbitrary per-workload metric.
    pub fn mean_of(stats: &[SimStats], f: impl Fn(&SimStats) -> f64) -> f64 {
        if stats.is_empty() {
            return 0.0;
        }
        stats.iter().map(f).sum::<f64>() / stats.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn geomean_basics() {
        assert!((geomean(&[1.0, 4.0]) - 2.0).abs() < 1e-9);
        assert!((geomean(&[2.0, 2.0, 2.0]) - 2.0).abs() < 1e-9);
    }

    #[test]
    fn geomean_empty_slice_is_zero() {
        // An empty suite aggregates to 0, not NaN.
        assert_eq!(geomean(&[]), 0.0);
    }

    #[test]
    fn geomean_single_element_is_identity() {
        assert!((geomean(&[3.7]) - 3.7).abs() < 1e-9);
    }

    #[test]
    fn geomean_clamps_nonpositive_inputs() {
        // Zero/negative IPCs (a broken run) must not produce NaN.
        assert!(geomean(&[0.0, 4.0]).is_finite());
    }

    #[test]
    fn quick_runner_runs_three_workloads() {
        let r = Runner::quick(2_000, 8_000);
        assert_eq!(r.len(), 3);
        let stats = r.run_config(&CoreConfig::fdp());
        assert_eq!(stats.len(), 3);
        for s in &stats {
            assert!(s.retired >= 8_000 - 8);
        }
    }

    #[test]
    fn from_programs_matches_workload_runner() {
        // A runner built from pre-built programs must simulate exactly
        // what the workload-built runner simulates.
        let by_workload = Runner::quick(1_000, 5_000);
        let programs = workload::quick_suite()
            .into_iter()
            .map(|w| (w.name.clone(), Arc::new(w.build())))
            .collect();
        let by_program = Runner::from_programs(programs, 1_000, 5_000);
        assert_eq!(by_program.names(), by_workload.names());
        assert_eq!(by_program.suite_name(), "generated");
        assert_eq!(
            by_program.run_config(&CoreConfig::fdp()),
            by_workload.run_config(&CoreConfig::fdp())
        );
        let suite = by_program.run_suite(&CoreConfig::fdp(), "test-run");
        for w in &suite.workloads {
            assert_eq!(w.family, "generated");
        }
    }

    #[test]
    fn speedup_of_identical_runs_is_zero() {
        let r = Runner::quick(1_000, 5_000);
        let a = r.run_config(&CoreConfig::fdp());
        let b = r.run_config(&CoreConfig::fdp());
        let s = Runner::speedup_pct(&a, &b);
        assert!(s.abs() < 1e-9, "{s}");
    }

    #[test]
    fn config_sweep_matches_individual_runs() {
        let r = Runner::quick(1_000, 5_000);
        let cfgs = [CoreConfig::no_fdp(), CoreConfig::fdp()];
        let grid = r.run_configs(&cfgs);
        assert_eq!(grid.len(), 2);
        // The flattened batch must land each (config, workload) result in
        // its own slot, identical to running the configs one at a time.
        assert_eq!(grid[0], r.run_config(&CoreConfig::no_fdp()));
        assert_eq!(grid[1], r.run_config(&CoreConfig::fdp()));
    }

    #[test]
    fn empty_sweep_returns_no_grids() {
        let r = Runner::quick(1_000, 5_000);
        assert!(r.run_configs(&[]).is_empty());
    }

    #[test]
    fn runner_stays_within_its_pool_bound() {
        // Regression for the old one-thread-per-workload Runner::run: the
        // pool, not the workload count, bounds live simulation workers.
        let pool = Arc::new(Pool::new(2));
        let r = Runner::quick(500, 3_000).with_pool(Arc::clone(&pool));
        let stats = r.run_config(&CoreConfig::fdp());
        assert_eq!(stats.len(), 3);
        let ps = pool.stats();
        assert_eq!(ps.jobs_completed, 3);
        assert!(
            ps.peak_busy <= 2,
            "peak busy workers {} exceeds the pool bound 2",
            ps.peak_busy
        );
    }

    #[test]
    fn run_suite_packages_manifest_and_workloads() {
        let r = Runner::quick(1_000, 5_000);
        let suite = r.run_suite(&CoreConfig::fdp(), "test-run");
        assert_eq!(suite.manifest.suite, "quick");
        assert_eq!(suite.manifest.workload_count, 3);
        assert_eq!(suite.workloads.len(), 3);
        assert!(suite.manifest.wall_seconds > 0.0);
        assert!(suite.geomean_ipc() > 0.1);
        for w in &suite.workloads {
            assert_eq!(w.dists.ftq_occupancy.count(), w.stats.cycles);
            assert!(w.dists.prefetch_lead_time.count() > 0);
        }
        // Pool telemetry rides along in the manifest.
        let pool = suite.manifest.pool.as_ref().expect("pool block");
        assert!(pool.get("workers").is_some());
        assert!(pool.get("jobs_completed").is_some());
    }

    #[test]
    fn mean_mpki_aggregates() {
        let r = Runner::quick(1_000, 5_000);
        let stats = r.run_config(&CoreConfig::fdp());
        let m = Runner::mean_mpki(&stats);
        assert!((0.0..200.0).contains(&m));
    }
}
