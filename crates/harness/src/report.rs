//! Text-table reports mirroring the paper's figures.

use fdip_telemetry::{Json, ToJson};
use std::collections::BTreeMap;
use std::fmt;

/// A simple aligned text table.
#[derive(Clone, Debug, Default)]
pub struct Table {
    /// Table title (e.g. "Fig. 7 — PFC vs BTB size").
    pub title: String,
    /// Column headers; the first column is the row label.
    pub columns: Vec<String>,
    /// Rows: label + one cell per remaining column.
    pub rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with a title and column headers.
    pub fn new(title: impl Into<String>, columns: &[&str]) -> Self {
        Table {
            title: title.into(),
            columns: columns.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row of cells (must match the column count).
    ///
    /// # Panics
    ///
    /// Panics if the cell count does not match the header count.
    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(
            cells.len(),
            self.columns.len(),
            "row width mismatch in '{}'",
            self.title
        );
        self.rows.push(cells);
    }

    /// Convenience: formats `f64` cells with 2 decimals after a label.
    pub fn row_f(&mut self, label: &str, values: &[f64]) {
        let mut cells = vec![label.to_string()];
        cells.extend(values.iter().map(|v| format!("{v:.2}")));
        self.row(cells);
    }
}

impl fmt::Display for Table {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut widths: Vec<usize> = self.columns.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                widths[i] = widths[i].max(c.len());
            }
        }
        writeln!(f, "== {} ==", self.title)?;
        let header: Vec<String> = self
            .columns
            .iter()
            .enumerate()
            .map(|(i, c)| format!("{:>w$}", c, w = widths[i]))
            .collect();
        writeln!(f, "{}", header.join("  "))?;
        let total: usize = widths.iter().sum::<usize>() + 2 * (widths.len() - 1);
        writeln!(f, "{}", "-".repeat(total))?;
        for row in &self.rows {
            let cells: Vec<String> = row
                .iter()
                .enumerate()
                .map(|(i, c)| format!("{:>w$}", c, w = widths[i]))
                .collect();
            writeln!(f, "{}", cells.join("  "))?;
        }
        Ok(())
    }
}

/// One experiment's output: tables for humans, metrics for tests and
/// `EXPERIMENTS.md`.
#[derive(Clone, Debug, Default)]
pub struct Report {
    /// Experiment id (`fig7`, `tab3`, …).
    pub id: String,
    /// Human-readable tables.
    pub tables: Vec<Table>,
    /// Named scalar results (e.g. `fdp_speedup_pct`).
    pub metrics: BTreeMap<String, f64>,
}

impl Report {
    /// Creates an empty report for an experiment id.
    pub fn new(id: &str) -> Self {
        Report {
            id: id.to_string(),
            ..Report::default()
        }
    }

    /// Records a named scalar metric.
    pub fn metric(&mut self, name: &str, value: f64) {
        self.metrics.insert(name.to_string(), value);
    }

    /// Reads a named scalar metric.
    pub fn get(&self, name: &str) -> Option<f64> {
        self.metrics.get(name).copied()
    }
}

impl ToJson for Table {
    /// Serializes as `{title, columns, rows}` with rows as string
    /// arrays (cells keep their display formatting).
    fn to_json(&self) -> Json {
        Json::obj()
            .with("title", self.title.as_str())
            .with("columns", self.columns.clone())
            .with(
                "rows",
                Json::Arr(self.rows.iter().map(|r| Json::from(r.clone())).collect()),
            )
    }
}

impl ToJson for Report {
    /// Serializes as `{id, metrics, tables}`; `metrics` maps metric
    /// names to numbers, `tables` mirrors the printed tables.
    fn to_json(&self) -> Json {
        let mut metrics = Json::obj();
        for (k, v) in &self.metrics {
            metrics.set(k, *v);
        }
        Json::obj()
            .with("id", self.id.as_str())
            .with("metrics", metrics)
            .with(
                "tables",
                Json::Arr(self.tables.iter().map(ToJson::to_json).collect()),
            )
    }
}

impl fmt::Display for Report {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for t in &self.tables {
            writeln!(f, "{t}")?;
        }
        if !self.metrics.is_empty() {
            writeln!(f, "metrics:")?;
            for (k, v) in &self.metrics {
                writeln!(f, "  {k} = {v:.4}")?;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_formats_aligned() {
        let mut t = Table::new("T", &["cfg", "speedup"]);
        t.row_f("baseline", &[1.0]);
        t.row_f("fdp", &[1.41]);
        let s = t.to_string();
        assert!(s.contains("== T =="));
        assert!(s.contains("1.41"));
        assert_eq!(s.lines().count(), 5);
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn row_width_checked() {
        let mut t = Table::new("T", &["a", "b"]);
        t.row(vec!["only-one".into()]);
    }

    #[test]
    fn report_json_carries_metrics_and_tables() {
        let mut r = Report::new("fig7");
        r.metric("fdp_speedup_pct", 14.1);
        let mut t = Table::new("T", &["cfg", "speedup"]);
        t.row_f("fdp", &[14.1]);
        r.tables.push(t);
        let j = r.to_json();
        assert_eq!(j.get("id").and_then(Json::as_str), Some("fig7"));
        let m = j.get("metrics").unwrap();
        assert_eq!(m.get("fdp_speedup_pct").and_then(Json::as_f64), Some(14.1));
        let tables = j.get("tables").and_then(Json::as_arr).unwrap();
        assert_eq!(tables[0].get("title").and_then(Json::as_str), Some("T"));
        let round = Json::parse(&j.to_string()).unwrap();
        assert_eq!(round, j);
    }

    #[test]
    fn report_metrics_round_trip() {
        let mut r = Report::new("fig7");
        r.metric("x", 1.5);
        assert_eq!(r.get("x"), Some(1.5));
        assert_eq!(r.get("y"), None);
        assert!(r.to_string().contains("x = 1.5000"));
    }
}
