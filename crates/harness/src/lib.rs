#![forbid(unsafe_code)]
#![warn(missing_docs)]
//! Experiment harness: regenerates every table and figure of the paper's
//! evaluation section on the synthetic workload suite.
//!
//! Each experiment lives in [`experiments`] and returns a [`Report`]
//! whose text tables mirror the paper's rows/series (speedup over the
//! no-prefetch/no-FDP baseline, branch MPKI, starvation cycles/KI,
//! I-cache tag accesses/KI, …). The `fdip-experiments` binary runs one
//! or all of them:
//!
//! ```text
//! cargo run --release -p fdip-harness --bin fdip-experiments -- all
//! cargo run --release -p fdip-harness --bin fdip-experiments -- fig7 fig8
//! ```
//!
//! Scale knobs (environment):
//!
//! * `FDIP_INSTRS`  — measured instructions per workload (default 200000)
//! * `FDIP_WARMUP`  — warm-up instructions per workload (default 50000)
//! * `FDIP_SUITE`   — `full` (10 workloads, default) or `quick` (3)
//! * `FDIP_JOBS`    — worker-pool size for parallel sweeps (default:
//!   available cores; `--jobs <n>` on the binaries overrides). Results
//!   are identical for any value — only wall-clock changes.

pub mod bench;
pub mod experiments;
pub mod remote;
mod report;
mod runner;
mod suite;

pub use bench::{BenchBaseline, BenchResult, BenchWorkload};
pub use remote::RemoteClient;
pub use report::{Report, Table};
pub use runner::{geomean, Runner};
pub use suite::{SuiteResult, WorkloadResult};
