//! Single-configuration runner: simulate one workload (or a whole suite)
//! under one frontend configuration, print the full statistics block, and
//! optionally emit machine-readable `results.json`. The tool a downstream
//! user reaches for before scripting sweeps.
//!
//! ```text
//! fdip-run --workload server_a --btb 4096 --no-pfc --instrs 500000
//! fdip-run --list-workloads
//! fdip-run --workload spec_a --policy ghr3 --prefetcher eip27 --ftq 12
//! fdip-run --json results.json              # quick suite -> results.json
//! fdip-run --suite full --json results.json
//! ```
//!
//! `--json <path>` (or the `FDIP_JSON` env var) writes the versioned
//! results schema documented in `docs/METRICS.md`.

use fdip_bpred::{GshareConfig, HistoryPolicy, TageConfig};
use fdip_harness::{Runner, SuiteResult, WorkloadResult};
use fdip_prefetch::PrefetcherKind;
use fdip_program::workload;
use fdip_sim::{
    run_workload_detailed, run_workload_traced, CoreConfig, DirectionConfig, SimStats, StallReason,
    STALL_REASON_NAMES,
};
use fdip_telemetry::RunManifest;
use std::path::Path;
use std::time::Instant;

fn usage() -> ! {
    eprintln!(
        "usage: fdip-run [options]
  --workload <name>      workload from the suite (default server_a)
  --list-workloads       print suite names, families, and default
                         warm-up/measured instruction counts, then exit
  --trace <path>         write a Chrome trace_event JSON of the run
                         (single --workload runs only; open in Perfetto)
  --trace-limit <n>      event ring-buffer capacity for --trace
                         (default 100000; oldest events drop first)
  --suite <quick|full>   run a whole suite instead of one workload
  --json <path>          write results.json (schema: docs/METRICS.md);
                         with no --workload/--suite, runs the quick suite.
                         FDIP_JSON=<path> is the env equivalent
  --jobs <n>             worker-pool size for suite runs (default
                         FDIP_JOBS or available cores)
  --instrs <n>           measured instructions (default FDIP_INSTRS or 200000)
  --warmup <n>           timed warm-up instructions (default FDIP_WARMUP or 50000)
  --ftq <entries>        FTQ depth (default 24; 2 = no FDP)
  --btb <entries>        BTB entries (default 8192)
  --btb-latency <cyc>    BTB latency (default 2)
  --pred-bw <n>          prediction bandwidth (default 12)
  --policy <p>           thr|ideal|ghr0|ghr1|ghr2|ghr3 (default thr)
  --direction <d>        tage9|tage18|tage36|gshare|perfect (default tage18)
  --prefetcher <p>       none|nl1|fnlmma|djolt|eip27|eip128|sn4l|sn4lbtb|rdip|perfect
  --no-pfc               disable post-fetch correction
  --loop-predictor       enable the loop predictor
  --perfect-btb          idealised BTB
  --no-fdp               shorthand for --ftq 2 --no-pfc"
    );
    std::process::exit(2);
}

fn parse_policy(s: &str) -> HistoryPolicy {
    match s {
        "thr" => HistoryPolicy::Thr,
        "ideal" => HistoryPolicy::Ideal,
        "ghr0" => HistoryPolicy::Ghr0,
        "ghr1" => HistoryPolicy::Ghr1,
        "ghr2" => HistoryPolicy::Ghr2,
        "ghr3" => HistoryPolicy::Ghr3,
        _ => usage(),
    }
}

fn parse_prefetcher(s: &str) -> PrefetcherKind {
    match s {
        "none" => PrefetcherKind::None,
        "nl1" => PrefetcherKind::NextLine,
        "fnlmma" => PrefetcherKind::FnlMma,
        "djolt" => PrefetcherKind::Djolt,
        "eip27" => PrefetcherKind::Eip27,
        "eip128" => PrefetcherKind::Eip128,
        "sn4l" => PrefetcherKind::SnfourlDis,
        "sn4lbtb" => PrefetcherKind::SnfourlDisBtb,
        "rdip" => PrefetcherKind::Rdip,
        "perfect" => PrefetcherKind::Perfect,
        _ => usage(),
    }
}

fn parse_direction(s: &str) -> DirectionConfig {
    match s {
        "tage9" => DirectionConfig::Tage(TageConfig::kb9()),
        "tage18" => DirectionConfig::Tage(TageConfig::kb18()),
        "tage36" => DirectionConfig::Tage(TageConfig::kb36()),
        "gshare" => DirectionConfig::Gshare(GshareConfig::default()),
        "perfect" => DirectionConfig::Perfect,
        _ => usage(),
    }
}

/// Writes the suite result, reporting failure on stderr with exit 1.
fn emit_json(suite: &SuiteResult, path: &str) {
    if let Err(e) = suite.write_json_file(Path::new(path)) {
        eprintln!("error: cannot write {path}: {e}");
        std::process::exit(1);
    }
    eprintln!("wrote {path}");
}

fn main() {
    // CLI runs mirror structured log records (e.g. the remote-fallback
    // warning) to stderr; in-process library users keep it quiet.
    fdip_obs::log::logger().set_stderr(true);
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut name: Option<String> = None;
    let mut suite_arg: Option<String> = None;
    let mut json_path = std::env::var("FDIP_JSON").ok().filter(|p| !p.is_empty());
    let env_u64 = |var: &str, default: u64| {
        std::env::var(var)
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(default)
    };
    let mut instrs = env_u64("FDIP_INSTRS", 200_000);
    let mut warmup = env_u64("FDIP_WARMUP", 50_000);
    let mut cfg = CoreConfig::fdp();
    let mut trace_path: Option<String> = None;
    let mut trace_limit: usize = 100_000;
    let mut list_workloads = false;

    let mut it = args.iter();
    while let Some(a) = it.next() {
        let mut val = || it.next().cloned().unwrap_or_else(|| usage());
        match a.as_str() {
            "--workload" => name = Some(val()),
            "--suite" => suite_arg = Some(val()),
            "--json" => json_path = Some(val()),
            "--jobs" => {
                let n = val().parse().unwrap_or_else(|_| usage());
                fdip_exec::set_global_jobs(n);
            }
            "--list-workloads" => list_workloads = true,
            "--trace" => trace_path = Some(val()),
            "--trace-limit" => trace_limit = val().parse().unwrap_or_else(|_| usage()),
            "--instrs" => instrs = val().parse().unwrap_or_else(|_| usage()),
            "--warmup" => warmup = val().parse().unwrap_or_else(|_| usage()),
            "--ftq" => cfg.ftq_entries = val().parse().unwrap_or_else(|_| usage()),
            "--btb" => cfg = cfg.with_btb_entries(val().parse().unwrap_or_else(|_| usage())),
            "--btb-latency" => cfg.btb_latency = val().parse().unwrap_or_else(|_| usage()),
            "--pred-bw" => cfg.pred_bw = val().parse().unwrap_or_else(|_| usage()),
            "--policy" => cfg.policy = parse_policy(&val()),
            "--direction" => cfg.direction = parse_direction(&val()),
            "--prefetcher" => cfg.prefetcher = parse_prefetcher(&val()),
            "--no-pfc" => cfg.pfc = false,
            "--loop-predictor" => cfg.loop_predictor = true,
            "--perfect-btb" => cfg.perfect_btb = true,
            "--no-fdp" => {
                cfg.ftq_entries = 2;
                cfg.pfc = false;
            }
            _ => usage(),
        }
    }

    if list_workloads {
        // Deferred past argument parsing so the listed warm-up/measured
        // instruction counts reflect --instrs/--warmup/env overrides.
        println!(
            "{:<12} {:<8} {:>10} {:>10}",
            "workload", "family", "warmup", "instrs"
        );
        for w in workload::suite() {
            println!(
                "{:<12} {:<8} {:>10} {:>10}",
                w.name, w.family, warmup, instrs
            );
        }
        return;
    }

    // A whole-suite run: explicit --suite, or --json without a specific
    // workload (the CI-friendly "produce results.json" invocation).
    let suite_name = match suite_arg.as_deref() {
        Some("quick") => Some("quick"),
        Some("full") => Some("full"),
        Some(_) => usage(),
        None if json_path.is_some() && name.is_none() => Some("quick"),
        None => None,
    };
    if let Some(sname) = suite_name {
        if trace_path.is_some() {
            eprintln!("error: --trace needs a single --workload run, not a suite");
            std::process::exit(2);
        }
        let workloads = if sname == "full" {
            workload::suite()
        } else {
            workload::quick_suite()
        };
        let runner = Runner::new(workloads, warmup, instrs).with_suite_name(sname);
        eprintln!(
            "suite {}: {} workloads [{}]",
            sname,
            runner.len(),
            runner.names().join(", ")
        );
        let suite = runner.run_suite(&cfg, "fdip-run");
        println!(
            "{:<12} {:>8} {:>12} {:>10} {:>14}",
            "workload", "IPC", "branch MPKI", "L1I MPKI", "starvation/KI"
        );
        for w in &suite.workloads {
            println!(
                "{:<12} {:>8.4} {:>12.2} {:>10.2} {:>14.1}",
                w.name,
                w.stats.ipc(),
                w.stats.branch_mpki(),
                w.stats.l1i_mpki(),
                w.stats.starvation_pki()
            );
        }
        println!("geomean IPC  {:>8.4}", suite.geomean_ipc());
        if let Some(path) = &json_path {
            emit_json(&suite, path);
        }
        return;
    }

    let name = name.unwrap_or_else(|| "server_a".to_string());
    let wl = workload::suite()
        .into_iter()
        .find(|w| w.name == name)
        .unwrap_or_else(|| {
            eprintln!("unknown workload '{name}' (try --list-workloads)");
            std::process::exit(2);
        });
    let program = wl.build();
    eprintln!(
        "workload {}: {} KB code, {} static branches",
        program.name(),
        program.image().footprint_bytes() / 1024,
        program.static_branch_count()
    );

    let t0 = Instant::now();
    let (s, dists) = match &trace_path {
        Some(path) => {
            let (s, dists, tracer) =
                run_workload_traced(&cfg, &program, warmup, instrs, trace_limit);
            let trace = tracer.to_chrome_trace(&STALL_REASON_NAMES);
            if let Err(e) = std::fs::write(path, trace.to_string()) {
                eprintln!("error: cannot write {path}: {e}");
                std::process::exit(1);
            }
            eprintln!(
                "wrote {path} ({} events, {} dropped)",
                tracer.len(),
                tracer.dropped()
            );
            (s, dists)
        }
        None => run_workload_detailed(&cfg, &program, warmup, instrs),
    };
    if let Some(path) = &json_path {
        let mut manifest =
            RunManifest::new("fdip-run", &format!("workload:{name}"), warmup, instrs, 1);
        manifest.wall_seconds = t0.elapsed().as_secs_f64();
        let suite = SuiteResult {
            manifest,
            workloads: vec![WorkloadResult {
                name: name.clone(),
                family: wl.family.to_string(),
                stats: s,
                dists,
            }],
        };
        emit_json(&suite, path);
    }
    print_stats(&s);
}

fn print_stats(s: &SimStats) {
    println!("cycles               {:>12}", s.cycles);
    println!("instructions         {:>12}", s.retired);
    println!("IPC                  {:>12.4}", s.ipc());
    println!("branches             {:>12}", s.retired_branches);
    println!("branch MPKI          {:>12.2}", s.branch_mpki());
    println!(
        "  cond-dir / undetected / indirect / return  {} / {} / {} / {}",
        s.misp_cond_dir, s.misp_undetected, s.misp_indirect, s.misp_return
    );
    println!("L1I MPKI             {:>12.2}", s.l1i_mpki());
    println!("I$ tag accesses/KI   {:>12.1}", s.icache_tag_pki());
    println!("starvation cyc/KI    {:>12.1}", s.starvation_pki());
    println!("avg FTQ occupancy    {:>12.1}", s.avg_ftq_occupancy());
    println!(
        "PFC restreams        {:>12}  (case1 {}, case2 {}, harmful {})",
        s.pfc_restreams, s.pfc_case1, s.pfc_case2, s.pfc_harmful
    );
    println!("history fixups       {:>12}", s.fixup_flushes);
    println!(
        "miss exposure        covered {} / partial {} / full {} (exposed {:.0}%)",
        s.miss_covered,
        s.miss_partial,
        s.miss_full,
        100.0 * s.exposed_fraction()
    );
    println!(
        "prefetch             {} candidates, {} fills, {} useful, {} dropped",
        s.prefetch_candidates,
        s.l1i.prefetch_fills,
        s.l1i.useful_prefetches,
        s.l1i.prefetch_dropped
    );
    let pct = |r: StallReason| {
        if s.cycles == 0 {
            0.0
        } else {
            100.0 * s.stall.get(r) as f64 / s.cycles as f64
        }
    };
    println!(
        "cycle accounting     commit {:.1}% / backend {:.1}% / fetch-bw {:.1}% / i$-miss {:.1}%",
        pct(StallReason::Committing),
        pct(StallReason::Backend),
        pct(StallReason::FetchBw),
        pct(StallReason::IcacheMiss)
    );
    println!(
        "                     ftq-empty {:.1}% / pred-lat {:.1}% / redirect {:.1}% / pfc {:.1}%",
        pct(StallReason::FtqEmpty),
        pct(StallReason::PredLatency),
        pct(StallReason::Redirect),
        pct(StallReason::PfcRestream)
    );
    println!(
        "frontend-bound       {:>11.1}%",
        100.0 * s.frontend_bound_fraction()
    );
    let o = &s.l1i.outcomes_pf;
    println!(
        "pf outcomes          timely {} / late {} / evicted {} / replaced {} / dropped {} (acc {:.2}, cov {:.2})",
        o.timely, o.late, o.useless_evicted, o.useless_replaced, o.dropped,
        s.pf_accuracy(), s.pf_coverage()
    );
    let o = &s.l1i.outcomes_fdp;
    println!(
        "fdp outcomes         timely {} / late {} / evicted {} / replaced {} (acc {:.2})",
        o.timely,
        o.late,
        o.useless_evicted,
        o.useless_replaced,
        s.fdp_accuracy()
    );
    println!("BTB hit rate         {:>12.3}", s.btb_hit_rate());
    println!("DRAM accesses        {:>12}", s.traffic.dram_accesses);
}
