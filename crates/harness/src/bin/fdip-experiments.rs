//! Command-line driver: regenerate the paper's tables and figures.
//!
//! ```text
//! fdip-experiments all            # every experiment, paper order
//! fdip-experiments fig7 fig8     # a subset
//! fdip-experiments --list        # show ids
//! fdip-experiments --json results.json all
//! ```
//!
//! Scale via `FDIP_INSTRS`, `FDIP_WARMUP`, `FDIP_SUITE=quick|full`.
//! `--json <path>` (or `FDIP_JSON=<path>`) additionally writes every
//! report — metrics and tables — as one versioned JSON document (schema:
//! `docs/METRICS.md`).

use fdip_harness::experiments;
use fdip_harness::Runner;
use fdip_telemetry::{Json, RunManifest, ToJson, SCHEMA_VERSION};
use std::io::Write;
use std::time::Instant;

fn main() {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let mut json_path = std::env::var("FDIP_JSON").ok().filter(|p| !p.is_empty());
    if let Some(i) = args.iter().position(|a| a == "--json") {
        if i + 1 >= args.len() {
            eprintln!("--json needs a path");
            std::process::exit(2);
        }
        json_path = Some(args.remove(i + 1));
        args.remove(i);
    }
    if args.is_empty() || args.iter().any(|a| a == "--help" || a == "-h") {
        eprintln!(
            "usage: fdip-experiments [--list] [--json <path>] \
             <all | fig1 tab3 tab4 fig6a fig6b fig7..fig14>"
        );
        std::process::exit(2);
    }
    if args.iter().any(|a| a == "--list") {
        for e in experiments::all() {
            println!("{:7} {}", e.id, e.title);
        }
        return;
    }

    let selected: Vec<_> = if args.iter().any(|a| a == "all") {
        experiments::all()
    } else {
        args.iter()
            .map(|id| {
                experiments::by_id(id).unwrap_or_else(|| {
                    eprintln!("unknown experiment '{id}' (try --list)");
                    std::process::exit(2);
                })
            })
            .collect()
    };

    let t0 = Instant::now();
    let runner = Runner::from_env();
    println!(
        "suite: {} workloads [{}]\n",
        runner.len(),
        runner.names().join(", ")
    );

    let mut reports = Vec::new();
    for e in selected {
        let t = Instant::now();
        println!("### {} — {}", e.id, e.title);
        let report = (e.run)(&runner);
        println!("{report}");
        println!("({} took {:.1}s)\n", e.id, t.elapsed().as_secs_f64());
        reports.push(report);
    }
    println!("total {:.1}s", t0.elapsed().as_secs_f64());

    if let Some(path) = json_path {
        let mut manifest = RunManifest::new(
            "fdip-experiments",
            runner.suite_name(),
            runner.warmup(),
            runner.measure(),
            runner.len(),
        );
        manifest.wall_seconds = t0.elapsed().as_secs_f64();
        let doc = Json::obj()
            .with("schema_version", SCHEMA_VERSION)
            .with("manifest", manifest.to_json())
            .with(
                "experiments",
                Json::Arr(reports.iter().map(ToJson::to_json).collect()),
            );
        let write = std::fs::File::create(&path)
            .and_then(|mut f| f.write_all(doc.to_string_pretty().as_bytes()));
        if let Err(e) = write {
            eprintln!("error: cannot write {path}: {e}");
            std::process::exit(1);
        }
        eprintln!("wrote {path}");
    }
}
