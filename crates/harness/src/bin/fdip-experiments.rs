//! Command-line driver: regenerate the paper's tables and figures.
//!
//! ```text
//! fdip-experiments all            # every experiment, paper order
//! fdip-experiments fig7 fig8     # a subset
//! fdip-experiments --list        # show ids
//! fdip-experiments --json results.json all
//! fdip-experiments --jobs 4 all  # bound the worker pool
//! fdip-experiments --server 127.0.0.1:7070 all  # route grids to fdip-serve
//! ```
//!
//! Scale via `FDIP_INSTRS`, `FDIP_WARMUP`, `FDIP_SUITE=quick|full`;
//! parallelism via `--jobs <n>` (or `FDIP_JOBS=<n>`, default: available
//! cores). Every selected experiment flattens its config × workload grid
//! into jobs on one shared worker pool, so distinct experiments overlap;
//! reports are still printed in selection order and are byte-identical
//! for any worker count. `--json <path>` (or `FDIP_JSON=<path>`)
//! additionally writes every report — metrics and tables — as one
//! versioned JSON document (schema: `docs/METRICS.md`) whose manifest
//! carries the pool telemetry block.

use fdip_harness::experiments;
use fdip_harness::{Report, Runner};
use fdip_telemetry::{Json, RunManifest, ToJson, SCHEMA_VERSION};
use std::io::Write;
use std::time::Instant;

fn main() {
    // CLI runs mirror structured log records (e.g. the remote-fallback
    // warning) to stderr; in-process library users keep it quiet.
    fdip_obs::log::logger().set_stderr(true);
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let mut json_path = std::env::var("FDIP_JSON").ok().filter(|p| !p.is_empty());
    if let Some(i) = args.iter().position(|a| a == "--json") {
        if i + 1 >= args.len() {
            eprintln!("--json needs a path");
            std::process::exit(2);
        }
        json_path = Some(args.remove(i + 1));
        args.remove(i);
    }
    let mut server = std::env::var("FDIP_SERVER").ok().filter(|a| !a.is_empty());
    if let Some(i) = args.iter().position(|a| a == "--server") {
        if i + 1 >= args.len() {
            eprintln!("--server needs an address (host:port)");
            std::process::exit(2);
        }
        server = Some(args.remove(i + 1));
        args.remove(i);
    }
    // --jobs must be handled before anything touches the global pool.
    if let Some(i) = args.iter().position(|a| a == "--jobs") {
        if i + 1 >= args.len() {
            eprintln!("--jobs needs a count");
            std::process::exit(2);
        }
        let n: usize = args.remove(i + 1).parse().unwrap_or_else(|_| {
            eprintln!("--jobs needs a positive integer");
            std::process::exit(2);
        });
        args.remove(i);
        fdip_exec::set_global_jobs(n);
    }
    if args.is_empty() || args.iter().any(|a| a == "--help" || a == "-h") {
        eprintln!(
            "usage: fdip-experiments [--list] [--json <path>] [--jobs <n>] \
             [--server <host:port>] <all | fig1 tab3 tab4 fig6a fig6b fig7..fig14>"
        );
        std::process::exit(2);
    }
    if args.iter().any(|a| a == "--list") {
        for e in experiments::all() {
            println!("{:7} {}", e.id, e.title);
        }
        return;
    }

    let selected: Vec<_> = if args.iter().any(|a| a == "all") {
        experiments::all()
    } else {
        args.iter()
            .map(|id| {
                experiments::by_id(id).unwrap_or_else(|| {
                    eprintln!("unknown experiment '{id}' (try --list)");
                    std::process::exit(2);
                })
            })
            .collect()
    };

    let t0 = Instant::now();
    let mut runner = Runner::from_env();
    if let Some(addr) = &server {
        runner = runner.with_server(addr, "fdip-experiments");
        println!("server: {addr} (grids served remotely, local fallback)");
    }
    println!(
        "suite: {} workloads [{}], pool: {} workers\n",
        runner.len(),
        runner.names().join(", "),
        runner.pool().threads(),
    );

    // Run every selected experiment concurrently: each gets a submitter
    // thread that flattens its grid into jobs on the shared pool, so
    // configs from distinct experiments overlap on the same workers.
    // Results land in indexed slots and are printed in selection order.
    let mut slots: Vec<Option<(Report, f64)>> = Vec::new();
    slots.resize_with(selected.len(), || None);
    std::thread::scope(|scope| {
        for (slot, e) in slots.iter_mut().zip(&selected) {
            let runner = &runner;
            scope.spawn(move || {
                let t = Instant::now();
                let report = (e.run)(runner);
                *slot = Some((report, t.elapsed().as_secs_f64()));
            });
        }
    });

    let mut reports = Vec::new();
    for (e, slot) in selected.iter().zip(slots) {
        let (report, secs) = slot.expect("experiment thread completed");
        println!("### {} — {}", e.id, e.title);
        println!("{report}");
        println!("({} took {secs:.1}s)\n", e.id);
        reports.push(report);
    }
    println!("total {:.1}s", t0.elapsed().as_secs_f64());

    if let Some(path) = json_path {
        let mut manifest = RunManifest::new(
            "fdip-experiments",
            runner.suite_name(),
            runner.warmup(),
            runner.measure(),
            runner.len(),
        );
        manifest.wall_seconds = t0.elapsed().as_secs_f64();
        manifest.pool = Some(runner.pool().stats().to_json());
        let doc = Json::obj()
            .with("schema_version", SCHEMA_VERSION)
            .with("manifest", manifest.to_json())
            .with(
                "experiments",
                Json::Arr(reports.iter().map(ToJson::to_json).collect()),
            );
        let write = std::fs::File::create(&path)
            .and_then(|mut f| f.write_all(doc.to_string_pretty().as_bytes()));
        if let Err(e) = write {
            eprintln!("error: cannot write {path}: {e}");
            std::process::exit(1);
        }
        eprintln!("wrote {path}");
    }
}
