//! Command-line driver: regenerate the paper's tables and figures.
//!
//! ```text
//! fdip-experiments all            # every experiment, paper order
//! fdip-experiments fig7 fig8     # a subset
//! fdip-experiments --list        # show ids
//! ```
//!
//! Scale via `FDIP_INSTRS`, `FDIP_WARMUP`, `FDIP_SUITE=quick|full`.

use fdip_harness::experiments;
use fdip_harness::Runner;
use std::time::Instant;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() || args.iter().any(|a| a == "--help" || a == "-h") {
        eprintln!("usage: fdip-experiments [--list] <all | fig1 tab3 tab4 fig6a fig6b fig7..fig14>");
        std::process::exit(2);
    }
    if args.iter().any(|a| a == "--list") {
        for e in experiments::all() {
            println!("{:7} {}", e.id, e.title);
        }
        return;
    }

    let selected: Vec<_> = if args.iter().any(|a| a == "all") {
        experiments::all()
    } else {
        args.iter()
            .map(|id| {
                experiments::by_id(id).unwrap_or_else(|| {
                    eprintln!("unknown experiment '{id}' (try --list)");
                    std::process::exit(2);
                })
            })
            .collect()
    };

    let t0 = Instant::now();
    let runner = Runner::from_env();
    println!(
        "suite: {} workloads [{}]\n",
        runner.len(),
        runner.names().join(", ")
    );

    for e in selected {
        let t = Instant::now();
        println!("### {} — {}", e.id, e.title);
        let report = (e.run)(&runner);
        println!("{report}");
        println!("({} took {:.1}s)\n", e.id, t.elapsed().as_secs_f64());
    }
    println!("total {:.1}s", t0.elapsed().as_secs_f64());
}
