//! Simulator-throughput benchmark: times simulated-instructions-per-second
//! and cycles-per-second across a workload suite and emits the versioned
//! `BENCH_core.json` document (`docs/METRICS.md`, Document 3), so every PR
//! records the simulator's performance trajectory.
//!
//! ```text
//! fdip-bench --json BENCH_core.json
//! fdip-bench --instrs 200000 --iters 5 --baseline BENCH_core.json --json new.json
//! ```
//!
//! `--baseline <path>` embeds a previously written bench document's
//! aggregate throughput for a machine-readable before/after comparison
//! (`bench.speedup_vs_baseline`).

use fdip_harness::bench::{run_bench, BenchBaseline};
use fdip_program::workload;
use fdip_sim::CoreConfig;
use fdip_telemetry::Json;
use std::path::Path;

fn usage() -> ! {
    eprintln!(
        "usage: fdip-bench [options]
  --suite <quick|full>   workload suite (default quick)
  --instrs <n>           instructions simulated per timed run (default
                         FDIP_INSTRS or 120000)
  --iters <n>            iterations per workload, best kept (default 3)
  --json <path>          write the bench document (FDIP_JSON equivalent)
  --baseline <path>      embed a previous bench document as the baseline"
    );
    std::process::exit(2);
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut suite_name = "quick".to_string();
    let mut instrs: u64 = std::env::var("FDIP_INSTRS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(120_000);
    let mut iters: u32 = 3;
    let mut json_path = std::env::var("FDIP_JSON").ok().filter(|p| !p.is_empty());
    let mut baseline_path: Option<String> = None;

    let mut it = args.iter();
    while let Some(a) = it.next() {
        let mut val = || it.next().cloned().unwrap_or_else(|| usage());
        match a.as_str() {
            "--suite" => suite_name = val(),
            "--instrs" => instrs = val().parse().unwrap_or_else(|_| usage()),
            "--iters" => iters = val().parse().unwrap_or_else(|_| usage()),
            "--json" => json_path = Some(val()),
            "--baseline" => baseline_path = Some(val()),
            _ => usage(),
        }
    }
    let workloads = match suite_name.as_str() {
        "quick" => workload::quick_suite(),
        "full" => workload::suite(),
        _ => usage(),
    };

    let baseline = baseline_path.map(|p| {
        let text = std::fs::read_to_string(&p).unwrap_or_else(|e| {
            eprintln!("error: cannot read baseline {p}: {e}");
            std::process::exit(1);
        });
        let doc = Json::parse(&text).unwrap_or_else(|e| {
            eprintln!("error: cannot parse baseline {p}: {e}");
            std::process::exit(1);
        });
        BenchBaseline::from_doc(&doc).unwrap_or_else(|| {
            eprintln!("error: {p} has no bench.aggregate block");
            std::process::exit(1);
        })
    });

    eprintln!(
        "bench suite {}: {} workloads, {} instrs, best of {}",
        suite_name,
        workloads.len(),
        instrs,
        iters
    );
    let mut result = run_bench(&CoreConfig::fdp(), &workloads, &suite_name, instrs, iters);
    result.baseline = baseline;

    println!(
        "{:<12} {:>12} {:>12} {:>14} {:>14}",
        "workload", "setup ms", "run ms", "instrs/sec", "cycles/sec"
    );
    for w in &result.workloads {
        println!(
            "{:<12} {:>12.1} {:>12.1} {:>14.0} {:>14.0}",
            w.name,
            w.setup_seconds * 1e3,
            w.run_seconds * 1e3,
            w.instrs_per_sec(),
            w.cycles_per_sec()
        );
    }
    println!(
        "aggregate    {:>12.1} {:>12.1} {:>14.0} {:>14.0}",
        result.setup_seconds() * 1e3,
        result.run_seconds() * 1e3,
        result.instrs_per_sec(),
        result.cycles_per_sec()
    );
    if result.baseline.is_some() {
        println!(
            "speedup vs baseline: {:.3}x instrs/sec",
            result.speedup_vs_baseline()
        );
    }
    if let Some(path) = &json_path {
        if let Err(e) = result.write_json_file(Path::new(path)) {
            eprintln!("error: cannot write {path}: {e}");
            std::process::exit(1);
        }
        eprintln!("wrote {path}");
    }
}
