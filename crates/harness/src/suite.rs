//! Machine-readable suite results: the `results.json` emitted by
//! `fdip-run --json` and consumed by regression tooling and plotting.
//!
//! The schema is versioned ([`fdip_telemetry::SCHEMA_VERSION`]) and
//! documented field-by-field in `docs/METRICS.md`; a root-level test
//! walks every emitted field name against that document so the two
//! cannot drift apart silently.

use std::io::Write;
use std::path::Path;

use crate::runner::geomean;
use fdip_sim::{SimDists, SimStats};
use fdip_telemetry::{Json, RunManifest, ToJson, SCHEMA_VERSION};

/// One workload's measured results: scalar counters, derived metrics,
/// and distribution telemetry.
#[derive(Clone, Debug)]
pub struct WorkloadResult {
    /// Workload name (e.g. `server_a`).
    pub name: String,
    /// Workload family (`server`/`client`/`spec`).
    pub family: String,
    /// Measurement-interval counters.
    pub stats: SimStats,
    /// Measurement-interval distributions.
    pub dists: SimDists,
}

impl ToJson for WorkloadResult {
    /// Serializes as `{name, family, counters, derived, histograms,
    /// sampled_ipc}`.
    fn to_json(&self) -> Json {
        let stats = self.stats.to_json();
        Json::obj()
            .with("name", self.name.as_str())
            .with("family", self.family.as_str())
            .with(
                "counters",
                stats.get("counters").cloned().unwrap_or(Json::Null),
            )
            .with(
                "derived",
                stats.get("derived").cloned().unwrap_or(Json::Null),
            )
            .with(
                "histograms",
                Json::obj()
                    .with("ftq_occupancy", self.dists.ftq_occupancy.to_json())
                    .with(
                        "prefetch_lead_time",
                        self.dists.prefetch_lead_time.to_json(),
                    )
                    .with("decode_queue_fill", self.dists.decode_queue_fill.to_json()),
            )
            .with("sampled_ipc", self.dists.sampled_ipc.clone())
    }
}

/// A full suite run: manifest plus per-workload results, aggregated the
/// way the paper does (geometric-mean IPC, arithmetic-mean rates).
#[derive(Clone, Debug)]
pub struct SuiteResult {
    /// Provenance of this run.
    pub manifest: RunManifest,
    /// Per-workload results, in suite order.
    pub workloads: Vec<WorkloadResult>,
}

impl SuiteResult {
    /// Geometric-mean IPC across the suite.
    pub fn geomean_ipc(&self) -> f64 {
        let ipcs: Vec<f64> = self.workloads.iter().map(|w| w.stats.ipc()).collect();
        geomean(&ipcs)
    }

    fn mean_of(&self, f: impl Fn(&SimStats) -> f64) -> f64 {
        if self.workloads.is_empty() {
            return 0.0;
        }
        self.workloads.iter().map(|w| f(&w.stats)).sum::<f64>() / self.workloads.len() as f64
    }

    /// The `aggregate` section of the schema.
    pub fn aggregate_json(&self) -> Json {
        Json::obj()
            .with("geomean_ipc", self.geomean_ipc())
            .with("mean_branch_mpki", self.mean_of(SimStats::branch_mpki))
            .with("mean_l1i_mpki", self.mean_of(SimStats::l1i_mpki))
            .with(
                "mean_starvation_pki",
                self.mean_of(SimStats::starvation_pki),
            )
            .with(
                "mean_icache_tag_pki",
                self.mean_of(SimStats::icache_tag_pki),
            )
            .with(
                "mean_exposed_fraction",
                self.mean_of(SimStats::exposed_fraction),
            )
    }

    /// Writes the pretty-printed JSON document to `path`.
    ///
    /// # Errors
    ///
    /// Returns the I/O error if the file cannot be created or written.
    pub fn write_json_file(&self, path: &Path) -> std::io::Result<()> {
        let mut f = std::fs::File::create(path)?;
        f.write_all(self.to_json().to_string_pretty().as_bytes())
    }
}

impl ToJson for SuiteResult {
    /// Serializes as `{schema_version, manifest, workloads, aggregate}` —
    /// the top level of the documented schema.
    fn to_json(&self) -> Json {
        Json::obj()
            .with("schema_version", SCHEMA_VERSION)
            .with("manifest", self.manifest.to_json())
            .with(
                "workloads",
                Json::Arr(self.workloads.iter().map(ToJson::to_json).collect()),
            )
            .with("aggregate", self.aggregate_json())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_workload(name: &str, ipc_cycles: (u64, u64)) -> WorkloadResult {
        let (retired, cycles) = ipc_cycles;
        let mut dists = SimDists::new();
        dists.ftq_occupancy.record(12);
        dists.prefetch_lead_time.record(40);
        dists.decode_queue_fill.record(3);
        dists.sampled_ipc.push(retired as f64 / cycles as f64);
        WorkloadResult {
            name: name.to_string(),
            family: "server".to_string(),
            stats: SimStats {
                cycles,
                retired,
                ..SimStats::default()
            },
            dists,
        }
    }

    #[test]
    fn suite_json_has_the_documented_top_level() {
        let suite = SuiteResult {
            manifest: RunManifest::new("test", "quick", 1000, 4000, 2),
            workloads: vec![
                sample_workload("a", (4000, 2000)),
                sample_workload("b", (4000, 4000)),
            ],
        };
        let j = suite.to_json();
        assert_eq!(
            j.get("schema_version").and_then(Json::as_u64),
            Some(SCHEMA_VERSION)
        );
        assert!(j.get("manifest").is_some());
        assert_eq!(
            j.get("workloads").and_then(Json::as_arr).map(<[Json]>::len),
            Some(2)
        );
        // geomean(2.0, 1.0) = sqrt(2).
        let agg = j.get("aggregate").unwrap();
        let g = agg.get("geomean_ipc").and_then(Json::as_f64).unwrap();
        assert!((g - 2.0f64.sqrt()).abs() < 1e-9);
    }

    #[test]
    fn workload_json_nests_counters_derived_histograms() {
        let w = sample_workload("a", (2000, 1000));
        let j = w.to_json();
        assert_eq!(j.get("name").and_then(Json::as_str), Some("a"));
        assert_eq!(
            j.get("counters")
                .and_then(|c| c.get("retired"))
                .and_then(Json::as_u64),
            Some(2000)
        );
        let ipc = j
            .get("derived")
            .and_then(|d| d.get("ipc"))
            .and_then(Json::as_f64);
        assert_eq!(ipc, Some(2.0));
        let h = j.get("histograms").unwrap();
        for key in ["ftq_occupancy", "prefetch_lead_time", "decode_queue_fill"] {
            assert_eq!(
                h.get(key)
                    .and_then(|v| v.get("count"))
                    .and_then(Json::as_u64),
                Some(1),
                "histogram {key}"
            );
        }
    }

    #[test]
    fn empty_suite_aggregates_to_zero() {
        let suite = SuiteResult {
            manifest: RunManifest::new("test", "quick", 0, 0, 0),
            workloads: Vec::new(),
        };
        assert_eq!(suite.geomean_ipc(), 0.0);
        let agg = suite.aggregate_json();
        assert_eq!(
            agg.get("mean_branch_mpki").and_then(Json::as_f64),
            Some(0.0)
        );
    }

    #[test]
    fn suite_json_round_trips_through_parser() {
        let suite = SuiteResult {
            manifest: RunManifest::new("test", "quick", 1000, 4000, 1),
            workloads: vec![sample_workload("a", (2000, 1000))],
        };
        let text = suite.to_json().to_string_pretty();
        let round = Json::parse(&text).unwrap();
        assert_eq!(round, suite.to_json());
    }
}
