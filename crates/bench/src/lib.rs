#![forbid(unsafe_code)]

//! Bench-support crate: the actual benchmarks live in `benches/` and use
//! [`fdip_harness`] experiment entry points at reduced scale.
