//! Ablation bench for the design choices DESIGN.md §7 calls out:
//! post-fetch correction, history policy, and functional warm-up,
//! each toggled independently on the same workload.

use criterion::{criterion_group, criterion_main, Criterion};
use fdip_bpred::HistoryPolicy;
use fdip_program::workload::{Workload, WorkloadFamily};
use fdip_program::Program;
use fdip_sim::{run_workload, CoreConfig};
use std::sync::OnceLock;

const WARMUP: u64 = 5_000;
const MEASURE: u64 = 20_000;

fn server() -> &'static Program {
    static P: OnceLock<Program> = OnceLock::new();
    P.get_or_init(|| Workload::family_default("server_a", WorkloadFamily::Server, 101).build())
}

fn ablation(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablation");
    g.sample_size(10);
    let small_btb = CoreConfig::fdp().with_btb_entries(1024);
    let cases: Vec<(&str, CoreConfig)> = vec![
        ("full_design", small_btb.clone()),
        ("no_pfc", small_btb.clone().with_pfc(false)),
        (
            "ghr_history",
            small_btb.clone().with_policy(HistoryPolicy::Ghr3),
        ),
        ("cold_btb", {
            let mut c = small_btb.clone();
            c.func_warmup = 0;
            c
        }),
        ("loop_predictor", {
            let mut c = small_btb.clone();
            c.loop_predictor = true;
            c
        }),
    ];
    for (name, cfg) in &cases {
        g.bench_function(name, |b| {
            b.iter(|| run_workload(cfg, server(), WARMUP, MEASURE));
        });
    }
    g.finish();
}

criterion_group!(benches, ablation);
criterion_main!(benches);
