//! Criterion benches, one per paper artifact (`cargo bench -- fig7`).
//!
//! Each bench runs the *characteristic configuration(s)* of its
//! table/figure on one workload at reduced scale, so `cargo bench`
//! both regenerates the experiment's shape quickly and tracks simulator
//! performance regressions. The full sweeps (all configurations × the
//! 10-workload suite) live in the `fdip-experiments` binary of
//! `fdip-harness`.

use criterion::{criterion_group, criterion_main, Criterion};
use fdip_bpred::{GshareConfig, HistoryPolicy, TageConfig};
use fdip_prefetch::PrefetcherKind;
use fdip_program::workload::{Workload, WorkloadFamily};
use fdip_program::Program;
use fdip_sim::{run_workload, CoreConfig, DirectionConfig};
use std::sync::OnceLock;

const WARMUP: u64 = 5_000;
const MEASURE: u64 = 20_000;

fn server() -> &'static Program {
    static P: OnceLock<Program> = OnceLock::new();
    P.get_or_init(|| Workload::family_default("server_a", WorkloadFamily::Server, 101).build())
}

fn bench_configs(c: &mut Criterion, group: &str, configs: &[(&str, CoreConfig)]) {
    let mut g = c.benchmark_group(group);
    g.sample_size(10);
    for (name, cfg) in configs {
        g.bench_function(name, |b| {
            b.iter(|| run_workload(cfg, server(), WARMUP, MEASURE));
        });
    }
    g.finish();
}

fn fig1(c: &mut Criterion) {
    bench_configs(
        c,
        "fig1_limit_study",
        &[
            ("baseline", CoreConfig::no_fdp()),
            ("fdp_192instr_ftq", CoreConfig::fdp()),
            (
                "perfect_prefetch",
                CoreConfig::no_fdp().with_prefetcher(PrefetcherKind::Perfect),
            ),
        ],
    );
}

fn tab3(c: &mut Criterion) {
    // Table III is a pure computation; benched for completeness.
    c.bench_function("tab3_ftq_overhead", |b| {
        b.iter(|| fdip_sim::ftq_overhead_bytes(std::hint::black_box(24)))
    });
}

fn fig6(c: &mut Criterion) {
    bench_configs(
        c,
        "fig6_prefetchers",
        &[
            (
                "eip128_no_fdp",
                CoreConfig::no_fdp().with_prefetcher(PrefetcherKind::Eip128),
            ),
            (
                "eip128_fdp",
                CoreConfig::fdp().with_prefetcher(PrefetcherKind::Eip128),
            ),
        ],
    );
}

fn fig7(c: &mut Criterion) {
    bench_configs(
        c,
        "fig7_pfc_btb",
        &[
            (
                "btb1k_pfc_off",
                CoreConfig::fdp().with_btb_entries(1024).with_pfc(false),
            ),
            (
                "btb1k_pfc_on",
                CoreConfig::fdp().with_btb_entries(1024).with_pfc(true),
            ),
        ],
    );
}

fn fig8(c: &mut Criterion) {
    bench_configs(
        c,
        "fig8_history",
        &[
            ("thr", CoreConfig::fdp().with_policy(HistoryPolicy::Thr)),
            ("ghr3", CoreConfig::fdp().with_policy(HistoryPolicy::Ghr3)),
        ],
    );
}

fn fig9(c: &mut Criterion) {
    bench_configs(
        c,
        "fig9_iso_budget",
        &[
            ("btb8k", CoreConfig::fdp().with_btb_entries(8192)),
            (
                "btb4k_eip27",
                CoreConfig::fdp()
                    .with_btb_entries(4096)
                    .with_prefetcher(PrefetcherKind::Eip27),
            ),
        ],
    );
}

fn fig10(c: &mut Criterion) {
    bench_configs(
        c,
        "fig10_btb_prefetch",
        &[
            (
                "sn4l_dis",
                CoreConfig::fdp()
                    .with_btb_entries(2048)
                    .with_prefetcher(PrefetcherKind::SnfourlDis),
            ),
            (
                "sn4l_dis_btb",
                CoreConfig::fdp()
                    .with_btb_entries(2048)
                    .with_prefetcher(PrefetcherKind::SnfourlDisBtb),
            ),
        ],
    );
}

fn fig11(c: &mut Criterion) {
    bench_configs(
        c,
        "fig11_btb_capacity",
        &[
            ("btb1k_fdp", CoreConfig::fdp().with_btb_entries(1024)),
            ("btb32k_fdp", CoreConfig::fdp().with_btb_entries(32 * 1024)),
        ],
    );
}

fn fig12(c: &mut Criterion) {
    bench_configs(
        c,
        "fig12_direction",
        &[
            (
                "gshare8k",
                CoreConfig {
                    direction: DirectionConfig::Gshare(GshareConfig::default()),
                    ..CoreConfig::fdp()
                },
            ),
            (
                "tage36k",
                CoreConfig {
                    direction: DirectionConfig::Tage(TageConfig::kb36()),
                    ..CoreConfig::fdp()
                },
            ),
        ],
    );
}

fn fig13(c: &mut Criterion) {
    bench_configs(
        c,
        "fig13_bandwidth",
        &[
            (
                "b6",
                CoreConfig {
                    pred_bw: 6,
                    ..CoreConfig::fdp()
                },
            ),
            (
                "b18m",
                CoreConfig {
                    pred_bw: 18,
                    multi_taken: true,
                    ..CoreConfig::fdp()
                },
            ),
        ],
    );
}

fn fig14(c: &mut Criterion) {
    bench_configs(
        c,
        "fig14_ftq_size",
        &[
            ("ftq2", CoreConfig::fdp().with_ftq(2)),
            ("ftq24", CoreConfig::fdp().with_ftq(24)),
        ],
    );
}

criterion_group!(figures, fig1, tab3, fig6, fig7, fig8, fig9, fig10, fig11, fig12, fig13, fig14);
criterion_main!(figures);
