#![forbid(unsafe_code)]
#![warn(missing_docs)]
//! `fdip-trace` — a fixed-capacity ring-buffer event sink for the
//! simulator, exportable as Chrome `trace_event` JSON.
//!
//! The tracer exists so a single simulated run can be inspected
//! cycle-by-cycle (in `chrome://tracing` or [Perfetto](https://ui.perfetto.dev))
//! without touching the aggregate-counter path. Two design rules govern
//! everything here:
//!
//! 1. **Zero cost when disabled.** Every emit funnels through
//!    [`Tracer::record`], whose first statement is an inlined
//!    `if !self.enabled {{ return; }}` — a disabled tracer costs one
//!    predictable branch per emit site and allocates nothing
//!    ([`Tracer::disabled`] holds an empty `Vec`).
//! 2. **Bounded memory.** Events land in a ring of fixed capacity;
//!    once full, the *oldest* events are overwritten and counted in
//!    [`Tracer::dropped`], so tracing a long run keeps the tail.
//!
//! Events are plain `(cycle, kind, a, b)` quadruples — 32 bytes, no
//! heap — with the interpretation of `a`/`b` fixed per [`TraceEventKind`].
//! [`Tracer::to_chrome_trace`] turns the buffer into a Chrome
//! `trace_event` document using the in-repo JSON writer (no external
//! dependencies): `StallTransition` pairs become duration (`"X"`) slices
//! on one track, everything else becomes instant (`"i"`) events on a
//! second track, with one simulated cycle mapped to one microsecond of
//! trace time.

use fdip_telemetry::Json;

/// What happened. The meaning of the generic payload words `a` and `b`
/// is listed per variant.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
#[repr(u8)]
pub enum TraceEventKind {
    /// A block entry entered the FTQ. `a` = start address, `b` = I-cache
    /// line number.
    FtqEnqueue = 0,
    /// The dedicated prefetcher issued a candidate line to the L1I.
    /// `a` = line number, `b` unused.
    PrefetchIssue = 1,
    /// A prefetch initiated a fill (passed the tag/MSHR checks).
    /// `a` = line number, `b` unused.
    PrefetchFill = 2,
    /// A demand fetch hit a line brought in by a prefetch. `a` = line
    /// number, `b` = bit 0: 1 = dedicated prefetcher, 0 = FDP fill;
    /// bit 1: the fill was still in flight (a *late* prefetch).
    PrefetchUse = 3,
    /// Post-fetch correction re-steered the prediction pipeline.
    /// `a` = branch PC, `b` = 1 if re-steered taken, 0 for a
    /// sequential history-fixup restream.
    Restream = 4,
    /// An execute-time misprediction flushed the pipeline. `a` = branch
    /// PC, `b` = correct next PC.
    Flush = 5,
    /// The per-cycle stall attribution changed bucket. `a` = new bucket
    /// index, `b` = previous bucket index (indices into the label table
    /// passed to [`Tracer::to_chrome_trace`]).
    StallTransition = 6,
}

impl TraceEventKind {
    /// Display name used for Chrome trace instant events.
    pub fn name(self) -> &'static str {
        match self {
            TraceEventKind::FtqEnqueue => "FtqEnqueue",
            TraceEventKind::PrefetchIssue => "PrefetchIssue",
            TraceEventKind::PrefetchFill => "PrefetchFill",
            TraceEventKind::PrefetchUse => "PrefetchUse",
            TraceEventKind::Restream => "Restream",
            TraceEventKind::Flush => "Flush",
            TraceEventKind::StallTransition => "StallTransition",
        }
    }
}

/// One recorded event: a cycle timestamp, a kind tag, and two payload
/// words interpreted per [`TraceEventKind`].
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub struct TraceEvent {
    /// Cycle at which the event occurred.
    pub cycle: u64,
    /// What happened.
    pub kind: TraceEventKind,
    /// First payload word (see [`TraceEventKind`]).
    pub a: u64,
    /// Second payload word (see [`TraceEventKind`]).
    pub b: u64,
}

/// Fixed-capacity ring-buffer event sink.
///
/// # Examples
///
/// ```
/// use fdip_trace::{Tracer, TraceEventKind};
///
/// let mut t = Tracer::with_capacity(2);
/// t.record(10, TraceEventKind::Flush, 0x40, 0x80);
/// t.record(20, TraceEventKind::Flush, 0x44, 0x90);
/// t.record(30, TraceEventKind::Flush, 0x48, 0xa0); // overwrites cycle 10
/// assert_eq!(t.len(), 2);
/// assert_eq!(t.dropped(), 1);
/// let cycles: Vec<u64> = t.events().map(|e| e.cycle).collect();
/// assert_eq!(cycles, [20, 30]);
/// ```
#[derive(Clone, Debug)]
pub struct Tracer {
    enabled: bool,
    capacity: usize,
    buf: Vec<TraceEvent>,
    /// Next slot to overwrite once the ring is full.
    next: usize,
    dropped: u64,
}

impl Tracer {
    /// A permanently-disabled tracer: no allocation, and every
    /// [`Tracer::record`] returns after one branch.
    pub fn disabled() -> Tracer {
        Tracer {
            enabled: false,
            capacity: 0,
            buf: Vec::new(),
            next: 0,
            dropped: 0,
        }
    }

    /// An enabled tracer keeping the most recent `capacity` events.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn with_capacity(capacity: usize) -> Tracer {
        assert!(capacity > 0, "tracer capacity must be nonzero");
        Tracer {
            enabled: true,
            capacity,
            buf: Vec::with_capacity(capacity.min(1 << 16)),
            next: 0,
            dropped: 0,
        }
    }

    /// Is this tracer recording?
    #[inline(always)]
    pub fn enabled(&self) -> bool {
        self.enabled
    }

    /// Ring capacity in events (zero for a disabled tracer).
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Events currently held (≤ capacity).
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// `true` when no events are held.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Events overwritten because the ring was full.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Forgets all recorded events (capacity and enablement unchanged).
    /// The simulator calls this at the warm-up/measurement boundary so
    /// an exported trace covers only the measured interval.
    pub fn clear(&mut self) {
        self.buf.clear();
        self.next = 0;
        self.dropped = 0;
    }

    /// Records one event. The disabled fast path is a single inlined
    /// branch; the write itself is outlined so emit sites stay small.
    #[inline(always)]
    pub fn record(&mut self, cycle: u64, kind: TraceEventKind, a: u64, b: u64) {
        if !self.enabled {
            return;
        }
        self.push(TraceEvent { cycle, kind, a, b });
    }

    fn push(&mut self, e: TraceEvent) {
        if self.buf.len() < self.capacity {
            self.buf.push(e);
        } else {
            self.buf[self.next] = e;
            self.next = (self.next + 1) % self.capacity;
            self.dropped += 1;
        }
    }

    /// Iterates the held events oldest-first.
    pub fn events(&self) -> impl Iterator<Item = &TraceEvent> {
        let (tail, head) = self.buf.split_at(self.next);
        head.iter().chain(tail.iter())
    }

    /// Exports the buffer as a Chrome `trace_event` JSON document
    /// (object format, loadable in `chrome://tracing` and Perfetto).
    ///
    /// One simulated cycle maps to one microsecond of trace time (`ts`).
    /// Consecutive `StallTransition` events are paired into duration
    /// (`"X"`) slices on the "cycle attribution" track named by
    /// `stall_labels[index]`; all other events become instant (`"i"`)
    /// events on the "frontend events" track. Events are emitted in
    /// non-decreasing `ts` order.
    pub fn to_chrome_trace(&self, stall_labels: &[&str]) -> Json {
        let label = |i: u64| -> &str {
            stall_labels
                .get(i as usize)
                .copied()
                .unwrap_or("unknown-stall")
        };
        // (ts, tie-break order, event) so a stable sort yields
        // non-decreasing timestamps while preserving emission order
        // within a cycle.
        let mut out: Vec<(u64, Json)> = Vec::with_capacity(self.len() + 4);
        let mut open_stall: Option<(u64, u64)> = None;
        let first_cycle = self.events().next().map_or(0, |e| e.cycle);
        let mut last_cycle = first_cycle;
        for e in self.events() {
            last_cycle = last_cycle.max(e.cycle);
            if e.kind == TraceEventKind::StallTransition {
                let (start, reason) = open_stall.unwrap_or((first_cycle, e.b));
                if e.cycle > start {
                    out.push((start, stall_slice(start, e.cycle, label(reason))));
                }
                open_stall = Some((e.cycle, e.a));
            } else {
                out.push((e.cycle, instant_event(e)));
            }
        }
        if let Some((start, reason)) = open_stall {
            if last_cycle > start {
                out.push((start, stall_slice(start, last_cycle, label(reason))));
            }
        }
        out.sort_by_key(|(ts, _)| *ts);
        let mut events: Vec<Json> = vec![
            thread_name_meta(STALL_TRACK, "cycle attribution"),
            thread_name_meta(EVENT_TRACK, "frontend events"),
        ];
        events.extend(out.into_iter().map(|(_, j)| j));
        Json::obj()
            .with("traceEvents", Json::Arr(events))
            .with("displayTimeUnit", "ms")
            .with(
                "metadata",
                Json::obj()
                    .with("tool", "fdip-run")
                    .with("clock", "one simulated cycle = 1us of trace time")
                    .with("dropped_events", self.dropped)
                    .with("ring_capacity", self.capacity),
            )
    }
}

/// Chrome `tid` for the stall-attribution slice track.
const STALL_TRACK: u64 = 0;
/// Chrome `tid` for the instant-event track.
const EVENT_TRACK: u64 = 1;

fn thread_name_meta(tid: u64, name: &str) -> Json {
    Json::obj()
        .with("name", "thread_name")
        .with("ph", "M")
        .with("pid", 0u64)
        .with("tid", tid)
        .with("args", Json::obj().with("name", name))
}

fn stall_slice(start: u64, end: u64, name: &str) -> Json {
    Json::obj()
        .with("name", name)
        .with("ph", "X")
        .with("ts", start)
        .with("dur", end - start)
        .with("pid", 0u64)
        .with("tid", STALL_TRACK)
}

fn instant_event(e: &TraceEvent) -> Json {
    let args = match e.kind {
        TraceEventKind::FtqEnqueue => Json::obj().with("addr", e.a).with("line", e.b),
        TraceEventKind::PrefetchIssue | TraceEventKind::PrefetchFill => {
            Json::obj().with("line", e.a)
        }
        TraceEventKind::PrefetchUse => Json::obj()
            .with("line", e.a)
            .with("source", if e.b & 1 == 1 { "prefetcher" } else { "fdp" })
            .with("late", e.b & 2 != 0),
        TraceEventKind::Restream => Json::obj().with("pc", e.a).with("taken", e.b == 1),
        TraceEventKind::Flush => Json::obj().with("pc", e.a).with("target", e.b),
        TraceEventKind::StallTransition => unreachable!("handled as a slice"),
    };
    Json::obj()
        .with("name", e.kind.name())
        .with("ph", "i")
        .with("ts", e.cycle)
        .with("pid", 0u64)
        .with("tid", EVENT_TRACK)
        .with("s", "t")
        .with("args", args)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_tracer_records_nothing() {
        let mut t = Tracer::disabled();
        t.record(1, TraceEventKind::Flush, 2, 3);
        assert!(!t.enabled());
        assert!(t.is_empty());
        assert_eq!(t.dropped(), 0);
        assert_eq!(t.capacity(), 0);
    }

    #[test]
    fn ring_overwrites_oldest_and_counts_drops() {
        let mut t = Tracer::with_capacity(3);
        for c in 0..10u64 {
            t.record(c, TraceEventKind::PrefetchIssue, c, 0);
        }
        assert_eq!(t.len(), 3);
        assert_eq!(t.dropped(), 7);
        let cycles: Vec<u64> = t.events().map(|e| e.cycle).collect();
        assert_eq!(cycles, [7, 8, 9]);
    }

    #[test]
    fn clear_resets_contents_but_not_enablement() {
        let mut t = Tracer::with_capacity(2);
        t.record(1, TraceEventKind::Flush, 0, 0);
        t.record(2, TraceEventKind::Flush, 0, 0);
        t.record(3, TraceEventKind::Flush, 0, 0);
        t.clear();
        assert!(t.is_empty());
        assert_eq!(t.dropped(), 0);
        assert!(t.enabled());
        t.record(4, TraceEventKind::Flush, 0, 0);
        assert_eq!(t.events().next().unwrap().cycle, 4);
    }

    #[test]
    #[should_panic(expected = "nonzero")]
    fn zero_capacity_panics() {
        let _ = Tracer::with_capacity(0);
    }

    #[test]
    fn chrome_export_pairs_stall_transitions_into_slices() {
        let labels = ["committing", "icache_miss", "ftq_empty"];
        let mut t = Tracer::with_capacity(16);
        // Attribution: committing [10,14), icache_miss [14,20), ftq_empty
        // [20,21) closed by the last event cycle.
        t.record(14, TraceEventKind::StallTransition, 1, 0);
        t.record(20, TraceEventKind::StallTransition, 2, 1);
        t.record(21, TraceEventKind::Flush, 0x40, 0x80);
        // The tracer only saw events from cycle 14, so the leading slice
        // starts there — shifted starts come from the clear() boundary.
        let doc = t.to_chrome_trace(&labels);
        let events = doc.get("traceEvents").unwrap().as_arr().unwrap();
        let slices: Vec<&Json> = events
            .iter()
            .filter(|e| e.get("ph").and_then(Json::as_str) == Some("X"))
            .collect();
        assert_eq!(slices.len(), 2);
        assert_eq!(
            slices[0].get("name").and_then(Json::as_str),
            Some("icache_miss")
        );
        assert_eq!(slices[0].get("ts").and_then(Json::as_u64), Some(14));
        assert_eq!(slices[0].get("dur").and_then(Json::as_u64), Some(6));
        assert_eq!(
            slices[1].get("name").and_then(Json::as_str),
            Some("ftq_empty")
        );
        assert_eq!(slices[1].get("dur").and_then(Json::as_u64), Some(1));
    }

    #[test]
    fn chrome_export_is_valid_json_with_monotonic_timestamps() {
        let mut t = Tracer::with_capacity(64);
        t.record(5, TraceEventKind::FtqEnqueue, 0x1000, 64);
        t.record(6, TraceEventKind::StallTransition, 1, 0);
        t.record(7, TraceEventKind::PrefetchIssue, 65, 0);
        t.record(7, TraceEventKind::PrefetchFill, 65, 0);
        t.record(9, TraceEventKind::StallTransition, 0, 1);
        t.record(12, TraceEventKind::PrefetchUse, 65, 3);
        t.record(13, TraceEventKind::Restream, 0x2000, 1);
        let doc = t.to_chrome_trace(&["a", "b"]);
        let round = Json::parse(&doc.to_string()).expect("export parses");
        let events = round.get("traceEvents").unwrap().as_arr().unwrap();
        assert!(events.len() >= 7);
        let mut last = 0u64;
        for e in events {
            let Some(ts) = e.get("ts").and_then(Json::as_u64) else {
                continue; // metadata events carry no ts
            };
            assert!(ts >= last, "ts went backwards: {ts} < {last}");
            last = ts;
        }
        let uses: Vec<&Json> = events
            .iter()
            .filter(|e| e.get("name").and_then(Json::as_str) == Some("PrefetchUse"))
            .collect();
        assert_eq!(uses.len(), 1);
        let args = uses[0].get("args").unwrap();
        assert_eq!(
            args.get("source").and_then(Json::as_str),
            Some("prefetcher")
        );
        assert_eq!(args.get("late").and_then(Json::as_bool), Some(true));
    }

    #[test]
    fn export_of_empty_tracer_is_well_formed() {
        let t = Tracer::with_capacity(4);
        let doc = t.to_chrome_trace(&[]);
        let events = doc.get("traceEvents").unwrap().as_arr().unwrap();
        // Only the two track-name metadata records.
        assert_eq!(events.len(), 2);
        assert!(Json::parse(&doc.to_string()).is_ok());
    }
}
